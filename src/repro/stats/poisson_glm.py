"""Poisson regression (log link) fitted by IRLS.

The plain Poisson GLM serves two roles in the reproduction: it is the
non-inflated comparator in the Vuong test motivating the paper's choice
of Zero-Inflated Poisson models, and it is the count backbone shared with
:mod:`repro.stats.zip_model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np
from scipy.special import gammaln
from scipy.stats import norm

from .information import aic, bic, mcfadden_r2

__all__ = ["PoissonResult", "fit_poisson", "poisson_loglik_terms", "add_intercept"]

_MAX_ETA = 30.0  # exp(30) ~ 1e13, ample for count data; guards overflow


def add_intercept(X: np.ndarray) -> np.ndarray:
    """Prepend a column of ones."""
    X = np.asarray(X, dtype=float)
    return np.column_stack([np.ones(X.shape[0]), X])


def poisson_loglik_terms(y: np.ndarray, eta: np.ndarray) -> np.ndarray:
    """Pointwise Poisson log-likelihood for linear predictor ``eta``."""
    eta = np.clip(eta, -_MAX_ETA, _MAX_ETA)
    mu = np.exp(eta)
    return y * eta - mu - gammaln(y + 1.0)


@dataclass
class PoissonResult:
    """Fitted Poisson GLM with Wald inference.

    ``names`` includes the intercept first; estimates/SEs/z/p align.
    """

    coef: np.ndarray
    std_err: np.ndarray
    names: List[str]
    log_likelihood: float
    null_log_likelihood: float
    n_obs: int
    converged: bool
    n_iter: int

    @property
    def z_values(self) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.std_err > 0, self.coef / self.std_err, np.nan)

    @property
    def p_values(self) -> np.ndarray:
        return 2.0 * norm.sf(np.abs(self.z_values))

    @property
    def aic(self) -> float:
        return aic(self.log_likelihood, len(self.coef))

    @property
    def bic(self) -> float:
        return bic(self.log_likelihood, len(self.coef), self.n_obs)

    @property
    def mcfadden_r2(self) -> float:
        return mcfadden_r2(self.log_likelihood, self.null_log_likelihood)

    def predict_mu(self, X: np.ndarray) -> np.ndarray:
        """Expected counts for a design matrix WITHOUT intercept column."""
        eta = add_intercept(X) @ self.coef
        return np.exp(np.clip(eta, -_MAX_ETA, _MAX_ETA))

    def loglik_terms(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Pointwise log-likelihood (used by the Vuong test)."""
        eta = add_intercept(X) @ self.coef
        return poisson_loglik_terms(np.asarray(y, dtype=float), eta)


def _irls(
    X: np.ndarray, y: np.ndarray, max_iter: int, tol: float
) -> tuple:
    n, p = X.shape
    beta = np.zeros(p)
    beta[0] = np.log(max(y.mean(), 1e-8))
    loglik = -np.inf
    converged = False
    iteration = 0
    ridge = 1e-8 * np.eye(p)
    for iteration in range(1, max_iter + 1):
        eta = np.clip(X @ beta, -_MAX_ETA, _MAX_ETA)
        mu = np.exp(eta)
        W = mu
        z = eta + (y - mu) / np.maximum(mu, 1e-12)
        XtW = X.T * W
        try:
            beta_new = np.linalg.solve(XtW @ X + ridge, XtW @ z)
        except np.linalg.LinAlgError:
            beta_new = np.linalg.lstsq(XtW @ X + ridge, XtW @ z, rcond=None)[0]
        new_loglik = float(poisson_loglik_terms(y, np.clip(X @ beta_new, -_MAX_ETA, _MAX_ETA)).sum())
        step = np.abs(beta_new - beta).max()
        beta = beta_new
        if np.isfinite(loglik) and abs(new_loglik - loglik) <= tol * (1.0 + abs(loglik)) and step < 1e-8:
            loglik = new_loglik
            converged = True
            break
        loglik = new_loglik
    eta = np.clip(X @ beta, -_MAX_ETA, _MAX_ETA)
    mu = np.exp(eta)
    XtWX = (X.T * mu) @ X + ridge
    try:
        cov = np.linalg.inv(XtWX)
    except np.linalg.LinAlgError:
        cov = np.linalg.pinv(XtWX)
    std_err = np.sqrt(np.clip(np.diag(cov), 0.0, None))
    return beta, std_err, loglik, converged, iteration


def fit_poisson(
    X: np.ndarray,
    y: np.ndarray,
    names: Optional[Sequence[str]] = None,
    max_iter: int = 100,
    tol: float = 1e-10,
) -> PoissonResult:
    """Fit ``y ~ Poisson(exp(b0 + X b))`` by IRLS.

    ``X`` must NOT contain an intercept column; one is added.  ``names``
    labels the non-intercept columns.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2 or len(y) != X.shape[0]:
        raise ValueError("X must be 2-D and aligned with y")
    if np.any(y < 0):
        raise ValueError("counts must be non-negative")
    design = add_intercept(X)
    coef, std_err, loglik, converged, n_iter = _irls(design, y, max_iter, tol)

    # Intercept-only model for McFadden's R^2.
    mean = max(y.mean(), 1e-12)
    null_eta = np.full_like(y, np.log(mean))
    null_loglik = float(poisson_loglik_terms(y, null_eta).sum())

    column_names = ["(Intercept)"] + list(
        names if names is not None else [f"x{i}" for i in range(1, X.shape[1] + 1)]
    )
    if len(column_names) != design.shape[1]:
        raise ValueError("names length must match the number of columns")
    return PoissonResult(
        coef=coef,
        std_err=std_err,
        names=column_names,
        log_likelihood=loglik,
        null_log_likelihood=null_loglik,
        n_obs=len(y),
        converged=converged,
        n_iter=n_iter,
    )
