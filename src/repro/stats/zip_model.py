"""Zero-Inflated Poisson (ZIP) regression, fitted by maximum likelihood.

The paper's §5.2 models completed contracts per user with ZIP models: a
*count* process (log link, Poisson) for the expected number of completed
contracts, and a *zero-inflation* process (logit link) for the odds of
being an "always-zero" user.  Tables 9 and 10 report coefficients,
standard errors and z-values of both components, plus the share of zero
outcomes and McFadden's R-squared; Vuong tests against the plain Poisson
justify the zero-inflated specification.

This is a from-scratch implementation: analytic gradient, L-BFGS
optimisation, and observed-information standard errors via a
finite-difference Hessian of the analytic gradient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize
from scipy.special import expit, gammaln
from scipy.stats import norm

from .information import aic, bic, mcfadden_r2
from .poisson_glm import add_intercept

__all__ = ["ZIPResult", "fit_zip"]

_MAX_ETA = 30.0


def _zip_loglik_terms(
    y: np.ndarray, eta: np.ndarray, zeta: np.ndarray
) -> np.ndarray:
    """Pointwise ZIP log-likelihood.

    ``eta`` is the count linear predictor (mu = exp(eta)); ``zeta`` the
    zero-inflation linear predictor (pi = sigmoid(zeta)).
    """
    eta = np.clip(eta, -_MAX_ETA, _MAX_ETA)
    zeta = np.clip(zeta, -_MAX_ETA, _MAX_ETA)
    mu = np.exp(eta)
    # log pi = -softplus(-zeta); log(1-pi) = -softplus(zeta)
    log_pi = -np.logaddexp(0.0, -zeta)
    log_one_minus_pi = -np.logaddexp(0.0, zeta)
    zero_mask = y == 0
    terms = np.empty_like(eta)
    terms[zero_mask] = np.logaddexp(
        log_pi[zero_mask], log_one_minus_pi[zero_mask] - mu[zero_mask]
    )
    pos = ~zero_mask
    terms[pos] = (
        log_one_minus_pi[pos]
        + y[pos] * eta[pos]
        - mu[pos]
        - gammaln(y[pos] + 1.0)
    )
    return terms


def _negloglik_and_grad(
    params: np.ndarray,
    X: np.ndarray,
    Z: np.ndarray,
    y: np.ndarray,
) -> Tuple[float, np.ndarray]:
    p = X.shape[1]
    beta, gamma = params[:p], params[p:]
    eta = np.clip(X @ beta, -_MAX_ETA, _MAX_ETA)
    zeta = np.clip(Z @ gamma, -_MAX_ETA, _MAX_ETA)
    mu = np.exp(eta)
    pi = expit(zeta)

    terms = _zip_loglik_terms(y, eta, zeta)
    loglik = float(terms.sum())

    zero_mask = y == 0
    # Weight of the Poisson branch for observed zeros.
    log_pi = -np.logaddexp(0.0, -zeta)
    log_one_minus_pi = -np.logaddexp(0.0, zeta)
    with np.errstate(over="ignore"):
        ll0 = np.logaddexp(log_pi, log_one_minus_pi - mu)
    w_pois = np.exp(log_one_minus_pi - mu - ll0)  # in (0, 1]

    grad_eta = np.where(zero_mask, -w_pois * mu, y - mu)
    # d log L0 / d zeta = pi (1 - pi) (1 - e^{-mu}) / L0 for observed zeros,
    # and d log(1 - pi) / d zeta = -pi for positive counts.
    p0 = np.exp(-mu)
    with np.errstate(over="ignore", under="ignore"):
        zero_grad = pi * (1.0 - pi) * (1.0 - p0) / np.maximum(np.exp(ll0), 1e-300)
    grad_zeta = np.where(zero_mask, zero_grad, -pi)
    grad_beta = X.T @ grad_eta
    grad_gamma = Z.T @ grad_zeta
    grad = np.concatenate([grad_beta, grad_gamma])
    return -loglik, -grad


def _numerical_hessian(
    params: np.ndarray,
    X: np.ndarray,
    Z: np.ndarray,
    y: np.ndarray,
    step: float = 1e-5,
) -> np.ndarray:
    """Central finite differences of the analytic gradient."""
    k = len(params)
    hessian = np.zeros((k, k))
    for i in range(k):
        h = step * max(1.0, abs(params[i]))
        plus = params.copy()
        plus[i] += h
        minus = params.copy()
        minus[i] -= h
        _, grad_plus = _negloglik_and_grad(plus, X, Z, y)
        _, grad_minus = _negloglik_and_grad(minus, X, Z, y)
        hessian[i] = (grad_plus - grad_minus) / (2.0 * h)
    return 0.5 * (hessian + hessian.T)


@dataclass
class ZIPResult:
    """Fitted ZIP model: count and zero-inflation components.

    ``count_names``/``zero_names`` include the intercept (listed last, as
    in the paper's tables the intercept is a separate row).
    """

    count_coef: np.ndarray
    count_se: np.ndarray
    count_names: List[str]
    zero_coef: np.ndarray
    zero_se: np.ndarray
    zero_names: List[str]
    log_likelihood: float
    null_log_likelihood: float
    n_obs: int
    pct_zero: float
    converged: bool

    @property
    def count_z(self) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.count_se > 0, self.count_coef / self.count_se, np.nan)

    @property
    def zero_z(self) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.zero_se > 0, self.zero_coef / self.zero_se, np.nan)

    @property
    def count_p(self) -> np.ndarray:
        return 2.0 * norm.sf(np.abs(self.count_z))

    @property
    def zero_p(self) -> np.ndarray:
        return 2.0 * norm.sf(np.abs(self.zero_z))

    @property
    def n_params(self) -> int:
        return len(self.count_coef) + len(self.zero_coef)

    @property
    def aic(self) -> float:
        return aic(self.log_likelihood, self.n_params)

    @property
    def bic(self) -> float:
        return bic(self.log_likelihood, self.n_params, self.n_obs)

    @property
    def mcfadden_r2(self) -> float:
        return mcfadden_r2(self.log_likelihood, self.null_log_likelihood)

    def loglik_terms(self, X: np.ndarray, Z: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Pointwise log-likelihood on (possibly new) data, for Vuong."""
        eta = add_intercept(np.asarray(X, dtype=float)) @ self.count_coef
        zeta = add_intercept(np.asarray(Z, dtype=float)) @ self.zero_coef
        return _zip_loglik_terms(np.asarray(y, dtype=float), eta, zeta)

    def predict_mean(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        """E[y] = (1 - pi) * mu."""
        eta = add_intercept(np.asarray(X, dtype=float)) @ self.count_coef
        zeta = add_intercept(np.asarray(Z, dtype=float)) @ self.zero_coef
        mu = np.exp(np.clip(eta, -_MAX_ETA, _MAX_ETA))
        pi = expit(np.clip(zeta, -_MAX_ETA, _MAX_ETA))
        return (1.0 - pi) * mu


def _column_scales(design: np.ndarray) -> np.ndarray:
    """Per-column scales for optimizer conditioning (1 for constants)."""
    scales = design.std(axis=0)
    return np.where(scales > 1e-12, scales, 1.0)


def _fit_raw(
    X: np.ndarray, Z: np.ndarray, y: np.ndarray
) -> Tuple[np.ndarray, float, bool]:
    """Optimize in column-scaled space for conditioning, return unscaled."""
    p, q = X.shape[1], Z.shape[1]
    sx, sz = _column_scales(X), _column_scales(Z)
    Xs, Zs = X / sx, Z / sz
    init = np.zeros(p + q)
    init[0] = np.log(max(y[y > 0].mean() if np.any(y > 0) else 0.5, 1e-3))
    zero_share = float((y == 0).mean())
    init[p] = np.log(max(zero_share, 0.05) / max(1.0 - zero_share, 0.05))
    # Bounds (in scaled space) keep coefficients finite under separation,
    # e.g. when no always-zero user has a nonzero dispute count.
    result = minimize(
        _negloglik_and_grad,
        init,
        args=(Xs, Zs, y),
        jac=True,
        method="L-BFGS-B",
        bounds=[(-30.0, 30.0)] * (p + q),
        options={"maxiter": 3000, "maxfun": 6000, "ftol": 1e-13, "gtol": 1e-9},
    )
    params = result.x / np.concatenate([sx, sz])
    return params, -float(result.fun), bool(result.success)


def fit_zip(
    X: np.ndarray,
    y: np.ndarray,
    Z: Optional[np.ndarray] = None,
    count_names: Optional[Sequence[str]] = None,
    zero_names: Optional[Sequence[str]] = None,
) -> ZIPResult:
    """Fit a Zero-Inflated Poisson regression.

    Parameters
    ----------
    X:
        Count-model covariates, WITHOUT intercept (added automatically).
    y:
        Non-negative integer outcomes.
    Z:
        Zero-inflation covariates (defaults to ``X``).
    count_names, zero_names:
        Column labels for reporting.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if Z is None:
        Z = X
    Z = np.asarray(Z, dtype=float)
    if np.any(y < 0):
        raise ValueError("counts must be non-negative")
    if X.shape[0] != len(y) or Z.shape[0] != len(y):
        raise ValueError("X, Z and y must be aligned")

    design_x = add_intercept(X)
    design_z = add_intercept(Z)
    params, loglik, converged = _fit_raw(design_x, design_z, y)

    hessian = _numerical_hessian(params, design_x, design_z, y)
    try:
        cov = np.linalg.inv(hessian)
    except np.linalg.LinAlgError:
        cov = np.linalg.pinv(hessian)
    std_err = np.sqrt(np.clip(np.diag(cov), 0.0, None))

    p = design_x.shape[1]
    # Null model: intercept-only in both components.
    null_x = np.ones((len(y), 1))
    null_params, null_loglik, _ = _fit_raw(null_x, null_x, y)

    cn = ["(Intercept)"] + list(
        count_names if count_names is not None else [f"x{i}" for i in range(1, X.shape[1] + 1)]
    )
    zn = ["(Intercept)"] + list(
        zero_names if zero_names is not None else [f"z{i}" for i in range(1, Z.shape[1] + 1)]
    )
    if len(cn) != p or len(zn) != design_z.shape[1]:
        raise ValueError("name lengths must match design matrices")

    return ZIPResult(
        count_coef=params[:p],
        count_se=std_err[:p],
        count_names=cn,
        zero_coef=params[p:],
        zero_se=std_err[p:],
        zero_names=zn,
        log_likelihood=loglik,
        null_log_likelihood=null_loglik,
        n_obs=len(y),
        pct_zero=float((y == 0).mean() * 100.0),
        converged=converged,
    )
