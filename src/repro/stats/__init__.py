"""From-scratch statistical estimators used by the paper's analyses."""

from .bootstrap import (
    BootstrapResult,
    bootstrap_ci,
    bootstrap_gini,
    bootstrap_top_share,
)
from .descriptive import (
    concentration_curve,
    gini,
    herfindahl,
    lorenz_curve,
    top_share,
)
from .hurdle import HurdleResult, fit_hurdle
from .information import aic, bic, mcfadden_r2
from .kmeans import KMeansResult, choose_k, kmeans, silhouette_score
from .ltm import LatentTransitionResult, fit_latent_transitions
from .mixture import PoissonMixtureResult, fit_poisson_mixture, select_poisson_mixture
from .overdispersion import (
    DispersionTest,
    cameron_trivedi_test,
    dispersion_index,
    within_class_dispersion,
)
from .poisson_glm import PoissonResult, add_intercept, fit_poisson, poisson_loglik_terms
from .preprocessing import Standardizer, sqrt_transform, standardize
from .vuong import VuongResult, vuong_test
from .zip_model import ZIPResult, fit_zip

__all__ = [
    "BootstrapResult",
    "bootstrap_ci",
    "bootstrap_gini",
    "bootstrap_top_share",
    "concentration_curve",
    "gini",
    "herfindahl",
    "lorenz_curve",
    "top_share",
    "HurdleResult",
    "fit_hurdle",
    "aic",
    "bic",
    "mcfadden_r2",
    "KMeansResult",
    "choose_k",
    "kmeans",
    "silhouette_score",
    "LatentTransitionResult",
    "fit_latent_transitions",
    "PoissonMixtureResult",
    "fit_poisson_mixture",
    "select_poisson_mixture",
    "DispersionTest",
    "cameron_trivedi_test",
    "dispersion_index",
    "within_class_dispersion",
    "PoissonResult",
    "add_intercept",
    "fit_poisson",
    "poisson_loglik_terms",
    "Standardizer",
    "sqrt_transform",
    "standardize",
    "VuongResult",
    "vuong_test",
    "ZIPResult",
    "fit_zip",
]
