"""Vuong's closeness test for non-nested model comparison.

§5.2: "Results from Vuong tests for all models suggest the ZIP models are
better-fitted for the data" — i.e. ZIP vs plain Poisson.  The statistic is

    V = sqrt(n) * mean(m) / sd(m),    m_i = lnf1(y_i) - lnf2(y_i)

which is asymptotically standard normal under the null that the models
are equally close to the truth.  Positive V favours model 1.  An
AIC-style correction for the difference in parameter counts is applied
by default, as in ``pscl``'s implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

__all__ = ["VuongResult", "vuong_test"]


@dataclass(frozen=True)
class VuongResult:
    """Outcome of a Vuong test: statistic, p-value, and verdict."""

    statistic: float
    p_value: float
    n_obs: int
    favours_model1: bool

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


def vuong_test(
    loglik1: np.ndarray,
    loglik2: np.ndarray,
    n_params1: int = 0,
    n_params2: int = 0,
    correction: bool = True,
) -> VuongResult:
    """Compare two models via their pointwise log-likelihoods.

    Parameters
    ----------
    loglik1, loglik2:
        Per-observation log-likelihood arrays of the two models on the
        SAME data, aligned.
    n_params1, n_params2:
        Parameter counts, used for the AIC-style correction.
    correction:
        Apply the AIC correction (subtract ``(k1 - k2) ln(n)/... / n``
        style penalty from the mean difference).
    """
    l1 = np.asarray(loglik1, dtype=float)
    l2 = np.asarray(loglik2, dtype=float)
    if l1.shape != l2.shape or l1.ndim != 1:
        raise ValueError("log-likelihood arrays must be 1-D and aligned")
    n = len(l1)
    if n < 2:
        raise ValueError("need at least two observations")
    m = l1 - l2
    if correction:
        m = m - (n_params1 - n_params2) / (2.0 * n) * np.log(n)
    sd = float(m.std(ddof=1))
    if sd < 1e-10:
        # The models coincide pointwise (e.g. ZIP collapsed onto Poisson);
        # the statistic is undefined — report indistinguishable.
        return VuongResult(0.0, 1.0, n, False)
    statistic = float(np.sqrt(n) * m.mean() / sd)
    p_value = float(2.0 * norm.sf(abs(statistic)))
    return VuongResult(statistic, p_value, n, statistic > 0)
