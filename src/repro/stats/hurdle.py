"""Hurdle Poisson regression — the standard robustness check for ZIP.

A hurdle model splits the outcome into two separately-estimated parts:

* a logit for crossing the hurdle (``y > 0`` vs ``y = 0``), and
* a zero-truncated Poisson for the positive counts.

Unlike ZIP, the hurdle model attributes *all* zeros to the binary stage
(there are no 'accidental' Poisson zeros), which makes it the natural
alternative specification when arguing about excess zeros — exactly the
comparison reviewers ask for next to §5.2's ZIP models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize
from scipy.special import expit, gammaln
from scipy.stats import norm

from .information import aic, bic, mcfadden_r2
from .poisson_glm import add_intercept

__all__ = ["HurdleResult", "fit_hurdle"]

_MAX_ETA = 30.0


def _logit_negloglik_grad(gamma: np.ndarray, Z: np.ndarray, positive: np.ndarray):
    zeta = np.clip(Z @ gamma, -_MAX_ETA, _MAX_ETA)
    p = expit(zeta)
    # log-likelihood: y+ log p + (1-y+) log(1-p), in stable form
    loglik = -(np.logaddexp(0.0, -zeta) * positive + np.logaddexp(0.0, zeta) * (1 - positive)).sum()
    grad = Z.T @ (positive - p)
    return -loglik, -grad


def _truncated_negloglik_grad(beta: np.ndarray, X: np.ndarray, y: np.ndarray):
    """Zero-truncated Poisson over the positive counts only."""
    eta = np.clip(X @ beta, -_MAX_ETA, _MAX_ETA)
    mu = np.exp(eta)
    # log P(y | y > 0) = y eta - mu - lgamma(y+1) - log(1 - e^{-mu})
    log_norm = np.log1p(-np.exp(-np.clip(mu, 1e-12, None)))
    loglik = (y * eta - mu - gammaln(y + 1.0) - log_norm).sum()
    # d/d eta: y - mu - mu e^{-mu}/(1 - e^{-mu})
    adjust = mu * np.exp(-mu) / np.clip(1.0 - np.exp(-mu), 1e-12, None)
    grad = X.T @ (y - mu - adjust)
    return -float(loglik), -grad


def _numerical_se(fn, params, *args, step: float = 1e-5) -> np.ndarray:
    k = len(params)
    hessian = np.zeros((k, k))
    for i in range(k):
        h = step * max(1.0, abs(params[i]))
        plus = params.copy(); plus[i] += h
        minus = params.copy(); minus[i] -= h
        _, grad_plus = fn(plus, *args)
        _, grad_minus = fn(minus, *args)
        hessian[i] = (grad_plus - grad_minus) / (2 * h)
    hessian = 0.5 * (hessian + hessian.T)
    try:
        cov = np.linalg.inv(hessian)
    except np.linalg.LinAlgError:
        cov = np.linalg.pinv(hessian)
    return np.sqrt(np.clip(np.diag(cov), 0.0, None))


@dataclass
class HurdleResult:
    """Fitted hurdle model: logit (hurdle) + zero-truncated Poisson."""

    count_coef: np.ndarray
    count_se: np.ndarray
    count_names: List[str]
    hurdle_coef: np.ndarray
    hurdle_se: np.ndarray
    hurdle_names: List[str]
    log_likelihood: float
    null_log_likelihood: float
    n_obs: int
    pct_zero: float
    converged: bool

    @property
    def n_params(self) -> int:
        return len(self.count_coef) + len(self.hurdle_coef)

    @property
    def aic(self) -> float:
        return aic(self.log_likelihood, self.n_params)

    @property
    def bic(self) -> float:
        return bic(self.log_likelihood, self.n_params, self.n_obs)

    @property
    def mcfadden_r2(self) -> float:
        return mcfadden_r2(self.log_likelihood, self.null_log_likelihood)

    @property
    def count_z(self) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.count_se > 0, self.count_coef / self.count_se, np.nan)

    @property
    def hurdle_z(self) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.hurdle_se > 0, self.hurdle_coef / self.hurdle_se, np.nan)

    def loglik_terms(self, X: np.ndarray, Z: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Pointwise log-likelihood, for Vuong comparison against ZIP."""
        X = add_intercept(np.asarray(X, dtype=float))
        Z = add_intercept(np.asarray(Z, dtype=float))
        y = np.asarray(y, dtype=float)
        zeta = np.clip(Z @ self.hurdle_coef, -_MAX_ETA, _MAX_ETA)
        log_p = -np.logaddexp(0.0, -zeta)
        log_q = -np.logaddexp(0.0, zeta)
        eta = np.clip(X @ self.count_coef, -_MAX_ETA, _MAX_ETA)
        mu = np.exp(eta)
        log_norm = np.log1p(-np.exp(-np.clip(mu, 1e-12, None)))
        truncated = y * eta - mu - gammaln(y + 1.0) - log_norm
        return np.where(y == 0, log_q, log_p + truncated)


def fit_hurdle(
    X: np.ndarray,
    y: np.ndarray,
    Z: Optional[np.ndarray] = None,
    count_names: Optional[Sequence[str]] = None,
    hurdle_names: Optional[Sequence[str]] = None,
) -> HurdleResult:
    """Fit a hurdle Poisson model.

    ``X`` drives the positive-count intensity (zero-truncated Poisson),
    ``Z`` (default ``X``) the hurdle crossing.  Intercepts are added.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if Z is None:
        Z = X
    Z = np.asarray(Z, dtype=float)
    if np.any(y < 0):
        raise ValueError("counts must be non-negative")
    if X.shape[0] != len(y) or Z.shape[0] != len(y):
        raise ValueError("X, Z and y must be aligned")
    positive = (y > 0).astype(float)
    if positive.sum() == 0:
        raise ValueError("hurdle model needs at least one positive count")

    design_z = add_intercept(Z)
    sz = design_z.std(axis=0)
    sz = np.where(sz > 1e-12, sz, 1.0)
    init_gamma = np.zeros(design_z.shape[1])
    share = positive.mean()
    init_gamma[0] = np.log(max(share, 0.01) / max(1 - share, 0.01))
    logit_fit = minimize(
        _logit_negloglik_grad, init_gamma, args=(design_z / sz, positive),
        jac=True, method="L-BFGS-B", bounds=[(-30, 30)] * design_z.shape[1],
        options={"maxiter": 2000},
    )
    gamma = logit_fit.x / sz
    gamma_se = _numerical_se(_logit_negloglik_grad, gamma, design_z, positive)

    mask = y > 0
    design_x = add_intercept(X)[mask]
    y_pos = y[mask]
    sx = design_x.std(axis=0)
    sx = np.where(sx > 1e-12, sx, 1.0)
    init_beta = np.zeros(design_x.shape[1])
    init_beta[0] = np.log(max(y_pos.mean(), 1e-3))
    pois_fit = minimize(
        _truncated_negloglik_grad, init_beta, args=(design_x / sx, y_pos),
        jac=True, method="L-BFGS-B", bounds=[(-30, 30)] * design_x.shape[1],
        options={"maxiter": 2000},
    )
    beta = pois_fit.x / sx
    beta_se = _numerical_se(_truncated_negloglik_grad, beta, design_x, y_pos)

    loglik = -(float(logit_fit.fun) + float(pois_fit.fun))

    # Intercept-only null model for McFadden.
    ones_z = np.ones((len(y), 1))
    null_logit = minimize(
        _logit_negloglik_grad, np.array([init_gamma[0]]), args=(ones_z, positive),
        jac=True, method="L-BFGS-B",
    )
    ones_x = np.ones((int(mask.sum()), 1))
    null_pois = minimize(
        _truncated_negloglik_grad, np.array([init_beta[0]]), args=(ones_x, y_pos),
        jac=True, method="L-BFGS-B",
    )
    null_loglik = -(float(null_logit.fun) + float(null_pois.fun))

    cn = ["(Intercept)"] + list(
        count_names if count_names is not None
        else [f"x{i}" for i in range(1, X.shape[1] + 1)]
    )
    hn = ["(Intercept)"] + list(
        hurdle_names if hurdle_names is not None
        else [f"z{i}" for i in range(1, Z.shape[1] + 1)]
    )
    return HurdleResult(
        count_coef=beta,
        count_se=beta_se,
        count_names=cn,
        hurdle_coef=gamma,
        hurdle_se=gamma_se,
        hurdle_names=hn,
        log_likelihood=loglik,
        null_log_likelihood=null_loglik,
        n_obs=len(y),
        pct_zero=float((y == 0).mean() * 100),
        converged=bool(logit_fit.success and pois_fit.success),
    )
