"""Model-selection criteria: AIC, BIC, McFadden's pseudo R-squared.

The paper selects the 12-class latent model by AIC and BIC (§5.1) and
reports McFadden's R-squared for its Zero-Inflated Poisson regressions
(Tables 9 and 10).
"""

from __future__ import annotations

import math

__all__ = ["aic", "bic", "mcfadden_r2"]


def aic(log_likelihood: float, n_params: int) -> float:
    """Akaike information criterion: ``2k - 2 lnL`` (lower is better)."""
    return 2.0 * n_params - 2.0 * log_likelihood


def bic(log_likelihood: float, n_params: int, n_obs: int) -> float:
    """Bayesian information criterion: ``k ln n - 2 lnL`` (lower is better)."""
    if n_obs <= 0:
        raise ValueError("n_obs must be positive")
    return n_params * math.log(n_obs) - 2.0 * log_likelihood


def mcfadden_r2(log_likelihood: float, null_log_likelihood: float) -> float:
    """McFadden's pseudo R-squared: ``1 - lnL / lnL_null``.

    ``lnL_null`` is the log-likelihood of the intercept-only model.  The
    statistic is 0 when the model explains nothing beyond the intercept
    and approaches 1 for near-perfect fits.
    """
    if null_log_likelihood == 0:
        raise ValueError("null log-likelihood must be non-zero")
    return 1.0 - log_likelihood / null_log_likelihood
