"""Bootstrap confidence intervals for descriptive statistics.

The paper reports point estimates for its concentration statistics ("5%
of users are responsible for over 70% of contracts").  For a
production-quality toolkit those numbers should come with uncertainty:
this module provides a generic nonparametric bootstrap (percentile CIs)
usable with any statistic over a 1-D sample, plus a convenience wrapper
for the concentration measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from .descriptive import gini, top_share

__all__ = ["BootstrapResult", "bootstrap_ci", "bootstrap_gini", "bootstrap_top_share"]


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate with a percentile bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    @property
    def width(self) -> float:
        return self.high - self.low

    def __str__(self) -> str:
        pct = int(self.confidence * 100)
        return f"{self.estimate:.4f} [{pct}% CI {self.low:.4f}, {self.high:.4f}]"


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: Optional[int] = 0,
) -> BootstrapResult:
    """Percentile bootstrap CI for ``statistic`` over ``values``.

    ``statistic`` receives a resampled 1-D array and returns a float.
    """
    data = np.asarray(values, dtype=float)
    if len(data) < 2:
        raise ValueError("need at least two observations to bootstrap")
    if not 0.5 < confidence < 1.0:
        raise ValueError("confidence must be in (0.5, 1.0)")
    rng = np.random.default_rng(seed)

    estimate = float(statistic(data))
    samples = np.empty(n_resamples)
    n = len(data)
    for index in range(n_resamples):
        resample = data[rng.integers(0, n, size=n)]
        samples[index] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(samples, [alpha, 1.0 - alpha])
    return BootstrapResult(
        estimate=estimate,
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=n_resamples,
    )


def bootstrap_gini(
    values: Sequence[float], n_resamples: int = 1000, seed: int = 0
) -> BootstrapResult:
    """Bootstrap CI for the Gini coefficient."""
    return bootstrap_ci(values, lambda x: gini(x), n_resamples=n_resamples, seed=seed)


def bootstrap_top_share(
    values: Sequence[float],
    top_percent: float,
    n_resamples: int = 1000,
    seed: int = 0,
) -> BootstrapResult:
    """Bootstrap CI for the top-``top_percent``% concentration share."""
    return bootstrap_ci(
        values,
        lambda x: top_share(x, top_percent),
        n_resamples=n_resamples,
        seed=seed,
    )
