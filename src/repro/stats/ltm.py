"""Latent Transition Modelling on top of the Poisson latent classes.

§5.1: "By creating a Latent Transition Model, we can additionally
understand how users move between classes over time."  The implementation
follows the paper's two-stage approach: fit the latent-class measurement
model on pooled user-month count profiles, then estimate a row-stochastic
transition matrix from each user's consecutive-month class assignments
(with Laplace smoothing so unseen transitions get small mass).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .mixture import PoissonMixtureResult, fit_poisson_mixture

__all__ = ["LatentTransitionResult", "fit_latent_transitions"]

#: One time period's observations: user id -> count-profile vector.
PanelPeriod = Dict[Hashable, np.ndarray]


@dataclass
class LatentTransitionResult:
    """A fitted latent transition model.

    ``assignments[t][user]`` is the hard class of ``user`` in period t;
    ``transition[i, j]`` estimates P(class j at t+1 | class i at t);
    ``occupancy[t, k]`` counts users assigned to class k in period t.
    """

    mixture: PoissonMixtureResult
    transition: np.ndarray              # (K, K), rows sum to 1
    occupancy: np.ndarray               # (T, K)
    assignments: List[Dict[Hashable, int]]

    @property
    def k(self) -> int:
        return self.mixture.k

    @property
    def n_periods(self) -> int:
        return self.occupancy.shape[0]

    def stationary_distribution(self) -> np.ndarray:
        """Left eigenvector of the transition matrix (power iteration)."""
        pi = np.full(self.k, 1.0 / self.k)
        for _ in range(500):
            nxt = pi @ self.transition
            if np.abs(nxt - pi).max() < 1e-12:
                return nxt
            pi = nxt
        return pi

    def persistence(self) -> np.ndarray:
        """Diagonal of the transition matrix: P(stay in class)."""
        return np.diag(self.transition)


def fit_latent_transitions(
    panel: Sequence[PanelPeriod],
    k: int,
    seed: int = 0,
    n_init: int = 3,
    smoothing: float = 0.5,
    feature_names: Optional[Sequence[str]] = None,
    mixture: Optional[PoissonMixtureResult] = None,
) -> LatentTransitionResult:
    """Fit the measurement model and estimate monthly transitions.

    Parameters
    ----------
    panel:
        One dict per time period mapping user id -> count vector.  Users
        may enter and leave; transitions are only counted for users
        observed in two consecutive periods.
    k:
        Number of latent classes (ignored when ``mixture`` is supplied).
    smoothing:
        Laplace pseudo-count added to every transition cell.
    mixture:
        A pre-fitted measurement model to reuse (e.g. from
        :func:`~repro.stats.mixture.select_poisson_mixture`).
    """
    if not panel:
        raise ValueError("panel must contain at least one period")
    pooled_rows: List[np.ndarray] = []
    for period in panel:
        pooled_rows.extend(np.asarray(v, dtype=float) for v in period.values())
    if not pooled_rows:
        raise ValueError("panel contains no observations")
    Y = np.vstack(pooled_rows)

    if mixture is None:
        mixture = fit_poisson_mixture(
            Y, k, n_init=n_init, seed=seed, feature_names=feature_names
        )
    n_classes = mixture.k

    assignments: List[Dict[Hashable, int]] = []
    occupancy = np.zeros((len(panel), n_classes))
    for t, period in enumerate(panel):
        users = list(period)
        if users:
            rows = np.vstack([np.asarray(period[u], dtype=float) for u in users])
            labels = mixture.assign(rows)
        else:
            labels = np.empty(0, dtype=int)
        table = {user: int(label) for user, label in zip(users, labels)}
        assignments.append(table)
        for label in table.values():
            occupancy[t, label] += 1

    counts = np.full((n_classes, n_classes), smoothing, dtype=float)
    for t in range(len(panel) - 1):
        now, nxt = assignments[t], assignments[t + 1]
        for user, source in now.items():
            target = nxt.get(user)
            if target is not None:
                counts[source, target] += 1.0
    transition = counts / counts.sum(axis=1, keepdims=True)

    return LatentTransitionResult(
        mixture=mixture,
        transition=transition,
        occupancy=occupancy,
        assignments=assignments,
    )
