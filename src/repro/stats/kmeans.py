"""k-means clustering (Lloyd's algorithm with k-means++ seeding).

Implemented from scratch on NumPy, as used for the cold-start analysis
(§5.2): the paper clusters standardised cold-start variables, finds one
dominant low-activity cluster plus a small high-activity one, then
re-clusters the outlier group into eight clusters.

Includes a silhouette score for data-driven choice of ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["KMeansResult", "kmeans", "silhouette_score", "choose_k"]


@dataclass
class KMeansResult:
    """Outcome of one k-means fit."""

    centers: np.ndarray     # (k, d)
    labels: np.ndarray      # (n,)
    inertia: float          # sum of squared distances to assigned centers
    n_iter: int

    @property
    def k(self) -> int:
        return self.centers.shape[0]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign new points to the nearest fitted center."""
        X = np.asarray(X, dtype=float)
        distances = _pairwise_sq(X, self.centers)
        return distances.argmin(axis=1)

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.k)


def _pairwise_sq(X: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of X and rows of C.

    Clipped at zero: the expansion ``|x|^2 - 2x.c + |c|^2`` can dip a few
    ulps below zero for coincident points.
    """
    distances = (
        (X * X).sum(axis=1)[:, None]
        - 2.0 * X @ C.T
        + (C * C).sum(axis=1)[None, :]
    )
    return np.clip(distances, 0.0, None)


def _kmeanspp_init(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D^2 sampling."""
    n = X.shape[0]
    centers = np.empty((k, X.shape[1]), dtype=float)
    first = int(rng.integers(0, n))
    centers[0] = X[first]
    closest = _pairwise_sq(X, centers[:1]).ravel()
    for i in range(1, k):
        total = closest.sum()
        if total <= 0:
            pick = int(rng.integers(0, n))
        else:
            pick = int(rng.choice(n, p=closest / total))
        centers[i] = X[pick]
        distances = _pairwise_sq(X, centers[i : i + 1]).ravel()
        closest = np.minimum(closest, distances)
    return centers


def kmeans(
    X: np.ndarray,
    k: int,
    n_init: int = 8,
    max_iter: int = 300,
    tol: float = 1e-6,
    seed: Optional[int] = 0,
) -> KMeansResult:
    """Cluster ``X`` into ``k`` groups; best of ``n_init`` restarts.

    Raises ``ValueError`` when ``k`` exceeds the number of points.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("expected a 2-D feature matrix")
    n = X.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in 1..{n}, got {k}")
    rng = np.random.default_rng(seed)

    best: Optional[KMeansResult] = None
    for _ in range(max(1, n_init)):
        centers = _kmeanspp_init(X, k, rng)
        labels = np.zeros(n, dtype=int)
        inertia = np.inf
        for iteration in range(max_iter):
            distances = _pairwise_sq(X, centers)
            labels = distances.argmin(axis=1)
            new_inertia = float(distances[np.arange(n), labels].sum())
            new_centers = centers.copy()
            for cluster in range(k):
                members = X[labels == cluster]
                if len(members):
                    new_centers[cluster] = members.mean(axis=0)
                else:  # re-seed an empty cluster at the farthest point
                    farthest = int(distances.min(axis=1).argmax())
                    new_centers[cluster] = X[farthest]
            shift = float(np.abs(new_centers - centers).max())
            centers = new_centers
            if abs(inertia - new_inertia) <= tol * max(1.0, abs(inertia)) and shift <= tol:
                inertia = new_inertia
                break
            inertia = new_inertia
        candidate = KMeansResult(centers, labels, inertia, iteration + 1)
        if best is None or candidate.inertia < best.inertia:
            best = candidate
    assert best is not None
    return best


def silhouette_score(X: np.ndarray, labels: np.ndarray, sample: int = 2000,
                     seed: int = 0) -> float:
    """Mean silhouette coefficient (subsampled for large n).

    Returns 0.0 when there are fewer than two clusters with members.
    """
    X = np.asarray(X, dtype=float)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        return 0.0
    n = X.shape[0]
    rng = np.random.default_rng(seed)
    index = rng.choice(n, size=min(sample, n), replace=False)
    scores = []
    for i in index:
        own = labels[i]
        same = X[(labels == own)]
        if len(same) <= 1:
            continue
        d_same = np.sqrt(((same - X[i]) ** 2).sum(axis=1))
        a = d_same.sum() / (len(same) - 1)
        b = np.inf
        for other in unique:
            if other == own:
                continue
            members = X[labels == other]
            if not len(members):
                continue
            d_other = np.sqrt(((members - X[i]) ** 2).sum(axis=1)).mean()
            b = min(b, d_other)
        denom = max(a, b)
        if denom > 0 and np.isfinite(b):
            scores.append((b - a) / denom)
    return float(np.mean(scores)) if scores else 0.0


def choose_k(
    X: np.ndarray, k_range: Tuple[int, int] = (2, 8), seed: int = 0
) -> Tuple[int, dict]:
    """Pick k by silhouette over an inclusive range; also return the scores."""
    scores = {}
    lo, hi = k_range
    for k in range(lo, hi + 1):
        if k > len(X):
            break
        result = kmeans(X, k, seed=seed)
        scores[k] = silhouette_score(X, result.labels, seed=seed)
    if not scores:
        raise ValueError("k_range produced no candidates")
    best = max(scores, key=lambda k: scores[k])
    return best, scores
