"""Descriptive concentration statistics.

§4.2 measures market centralisation with top-percentile concentration
curves ("about 5% of users are responsible for over 70% of contracts");
this module provides the curve plus Gini and Herfindahl summaries.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["gini", "lorenz_curve", "top_share", "concentration_curve", "herfindahl"]


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = equal)."""
    x = np.sort(np.asarray(values, dtype=float))
    if len(x) == 0:
        raise ValueError("gini of empty sequence")
    if np.any(x < 0):
        raise ValueError("values must be non-negative")
    total = x.sum()
    if total == 0:
        return 0.0
    n = len(x)
    index = np.arange(1, n + 1)
    return float((2.0 * (index * x).sum() - (n + 1) * total) / (n * total))


def lorenz_curve(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Lorenz curve points: cumulative population share vs value share."""
    x = np.sort(np.asarray(values, dtype=float))
    if len(x) == 0:
        raise ValueError("lorenz of empty sequence")
    cumulative = np.cumsum(x)
    total = cumulative[-1]
    population = np.arange(1, len(x) + 1) / len(x)
    share = cumulative / total if total > 0 else np.zeros_like(cumulative)
    return np.concatenate([[0.0], population]), np.concatenate([[0.0], share])


def top_share(values: Sequence[float], top_percent: float) -> float:
    """Fraction of the total held by the top ``top_percent`` % of items.

    ``top_share(contract_counts, 5.0)`` answers "what share of contracts
    involve the top 5% of users" — Figure 5's y-axis.
    """
    if not 0 < top_percent <= 100:
        raise ValueError("top_percent must be in (0, 100]")
    x = np.sort(np.asarray(values, dtype=float))[::-1]
    if len(x) == 0:
        raise ValueError("top_share of empty sequence")
    total = x.sum()
    if total == 0:
        return 0.0
    count = max(1, int(np.ceil(len(x) * top_percent / 100.0)))
    return float(x[:count].sum() / total)


def concentration_curve(
    values: Sequence[float], percents: Sequence[float] = tuple(range(1, 101))
) -> Dict[float, float]:
    """Top-percentile concentration at each requested percent."""
    return {p: top_share(values, p) for p in percents}


def herfindahl(values: Sequence[float]) -> float:
    """Herfindahl–Hirschman index of concentration (sum of squared shares)."""
    x = np.asarray(values, dtype=float)
    total = x.sum()
    if len(x) == 0:
        raise ValueError("herfindahl of empty sequence")
    if total == 0:
        return 0.0
    shares = x / total
    return float((shares**2).sum())
