"""Poisson mixture models (Latent Class Analysis on count profiles).

§5.1 classifies each user-month by its vector of transaction counts
(made/accepted, per contract type) using a latent-class model with
Poisson emissions ("using a Poisson curve, due to non-overdispersed count
data"), selecting 12 classes by AIC and BIC.

This module implements the estimator from scratch: EM with log-space
responsibilities, multiple restarts, rate floors against degenerate
classes, and model selection across a class-count range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import gammaln, logsumexp

from .information import aic, bic

__all__ = ["PoissonMixtureResult", "fit_poisson_mixture", "select_poisson_mixture"]

_RATE_FLOOR = 1e-4


@dataclass
class PoissonMixtureResult:
    """A fitted K-class Poisson mixture.

    ``rates[k, j]`` is class k's mean count for feature j — directly
    comparable to the paper's Table 6 (average monthly transactions per
    class).  Classes are sorted by descending mixing weight.
    """

    rates: np.ndarray       # (K, d)
    weights: np.ndarray     # (K,)
    log_likelihood: float
    n_obs: int
    feature_names: List[str]
    converged: bool
    n_iter: int

    @property
    def k(self) -> int:
        return self.rates.shape[0]

    @property
    def n_params(self) -> int:
        """K*d emission rates plus K-1 free mixing weights."""
        return self.rates.size + self.k - 1

    @property
    def aic(self) -> float:
        return aic(self.log_likelihood, self.n_params)

    @property
    def bic(self) -> float:
        return bic(self.log_likelihood, self.n_params, self.n_obs)

    def log_responsibilities(self, Y: np.ndarray) -> np.ndarray:
        """Log posterior class probabilities for each row of ``Y``."""
        Y = np.asarray(Y, dtype=float)
        log_joint = _log_emission(Y, self.rates) + np.log(self.weights)[None, :]
        return log_joint - logsumexp(log_joint, axis=1, keepdims=True)

    def responsibilities(self, Y: np.ndarray) -> np.ndarray:
        return np.exp(self.log_responsibilities(Y))

    def assign(self, Y: np.ndarray) -> np.ndarray:
        """Hard class assignment (posterior argmax) per row."""
        return self.log_responsibilities(Y).argmax(axis=1)


def _log_emission(Y: np.ndarray, rates: np.ndarray) -> np.ndarray:
    """(n, K) log P(y_i | class k) under independent Poissons."""
    log_rates = np.log(rates)  # rates are floored, so this is finite
    # sum_j [ y_ij log λ_kj - λ_kj - lgamma(y_ij + 1) ]
    term = Y @ log_rates.T - rates.sum(axis=1)[None, :]
    return term - gammaln(Y + 1.0).sum(axis=1, keepdims=True)


def _em_once(
    Y: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iter: int,
    tol: float,
) -> Tuple[np.ndarray, np.ndarray, float, bool, int]:
    n, d = Y.shape
    # Seed rates from k random observations (jittered, floored).
    seeds = rng.choice(n, size=k, replace=n < k)
    rates = Y[seeds] + rng.uniform(0.05, 0.5, size=(k, d))
    rates = np.maximum(rates, _RATE_FLOOR)
    weights = np.full(k, 1.0 / k)

    loglik = -np.inf
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        log_joint = _log_emission(Y, rates) + np.log(weights)[None, :]
        log_norm = logsumexp(log_joint, axis=1, keepdims=True)
        new_loglik = float(log_norm.sum())
        resp = np.exp(log_joint - log_norm)  # (n, K)

        mass = resp.sum(axis=0)  # (K,)
        empty = mass < 1e-8
        if np.any(empty):
            # Re-seed dead classes at the worst-explained points.
            worst = np.argsort(log_norm.ravel())[: int(empty.sum())]
            for class_index, point in zip(np.where(empty)[0], worst):
                rates[class_index] = np.maximum(Y[point] + 0.1, _RATE_FLOOR)
                mass[class_index] = 1.0
        weights = np.maximum(mass, 1e-8)
        weights = weights / weights.sum()
        rates = (resp.T @ Y) / np.maximum(mass[:, None], 1e-8)
        rates = np.maximum(rates, _RATE_FLOOR)

        if np.isfinite(loglik) and abs(new_loglik - loglik) <= tol * (1.0 + abs(loglik)):
            loglik = new_loglik
            converged = True
            break
        loglik = new_loglik
    return rates, weights, loglik, converged, iteration


def fit_poisson_mixture(
    Y: np.ndarray,
    k: int,
    n_init: int = 5,
    max_iter: int = 300,
    tol: float = 1e-7,
    seed: int = 0,
    feature_names: Optional[Sequence[str]] = None,
) -> PoissonMixtureResult:
    """Fit a K-class Poisson mixture by EM (best of ``n_init`` restarts)."""
    Y = np.asarray(Y, dtype=float)
    if Y.ndim != 2:
        raise ValueError("expected a 2-D count matrix")
    if np.any(Y < 0):
        raise ValueError("counts must be non-negative")
    if not 1 <= k <= len(Y):
        raise ValueError(f"k must be in 1..{len(Y)}, got {k}")
    rng = np.random.default_rng(seed)

    best: Optional[Tuple[np.ndarray, np.ndarray, float, bool, int]] = None
    for _ in range(max(1, n_init)):
        candidate = _em_once(Y, k, rng, max_iter, tol)
        if best is None or candidate[2] > best[2]:
            best = candidate
    assert best is not None
    rates, weights, loglik, converged, n_iter = best

    order = np.argsort(-weights)
    names = list(
        feature_names
        if feature_names is not None
        else [f"f{j}" for j in range(Y.shape[1])]
    )
    return PoissonMixtureResult(
        rates=rates[order],
        weights=weights[order],
        log_likelihood=loglik,
        n_obs=len(Y),
        feature_names=names,
        converged=converged,
        n_iter=n_iter,
    )


def select_poisson_mixture(
    Y: np.ndarray,
    k_range: Tuple[int, int] = (2, 14),
    criterion: str = "bic",
    seed: int = 0,
    n_init: int = 3,
    feature_names: Optional[Sequence[str]] = None,
) -> Tuple[PoissonMixtureResult, Dict[int, float]]:
    """Fit mixtures across ``k_range`` and keep the criterion-best.

    Returns the winning model and the per-k criterion scores (lower is
    better for both AIC and BIC).
    """
    if criterion not in ("aic", "bic"):
        raise ValueError("criterion must be 'aic' or 'bic'")
    scores: Dict[int, float] = {}
    best_model: Optional[PoissonMixtureResult] = None
    lo, hi = k_range
    for k in range(lo, hi + 1):
        if k > len(Y):
            break
        model = fit_poisson_mixture(
            Y, k, n_init=n_init, seed=seed + k, feature_names=feature_names
        )
        scores[k] = model.bic if criterion == "bic" else model.aic
        if best_model is None or scores[k] < scores[best_model.k]:
            best_model = model
    if best_model is None:
        raise ValueError("k_range produced no candidates")
    return best_model, scores
