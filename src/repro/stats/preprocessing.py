"""Feature preprocessing used by the paper's statistical analyses.

§5.2 standardises the cold-start variables (zero mean, unit variance)
before clustering, and square-root-transforms skewed covariates before
the Zero-Inflated Poisson regressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["Standardizer", "standardize", "sqrt_transform"]


@dataclass
class Standardizer:
    """Fitted z-score transform (zero mean, unit variance per column).

    Columns with zero variance are left centred but unscaled, so constant
    features do not produce NaNs.
    """

    mean: np.ndarray
    scale: np.ndarray

    @classmethod
    def fit(cls, X: np.ndarray) -> "Standardizer":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale = np.where(scale > 0, scale, 1.0)
        return cls(mean=mean, scale=scale)

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return (X - self.mean) / self.scale

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        Z = np.asarray(Z, dtype=float)
        return Z * self.scale + self.mean


def standardize(X: np.ndarray) -> np.ndarray:
    """One-shot z-score standardisation of a feature matrix."""
    return Standardizer.fit(X).transform(X)


def sqrt_transform(
    X: np.ndarray, skip_columns: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Square-root transform (the paper's variance-stabiliser for skewed
    count covariates), optionally skipping selected columns.

    Negative inputs are clipped to zero before the square root.
    """
    X = np.asarray(X, dtype=float).copy()
    skip = set(skip_columns or ())
    for column in range(X.shape[1]):
        if column in skip:
            continue
        X[:, column] = np.sqrt(np.clip(X[:, column], 0.0, None))
    return X
