"""Overdispersion diagnostics for count data.

§5.1 justifies the Poisson latent-class specification "due to
non-overdispersed count data".  This module makes that claim checkable:

* :func:`dispersion_index` — variance/mean ratio (1 under Poisson);
* :func:`cameron_trivedi_test` — the standard regression-based test of
  H0: Var(y) = E(y) against Var(y) = E(y) + a·E(y)^2, given fitted means;
* :func:`within_class_dispersion` — dispersion of each latent class's
  count profile, the direct check behind the paper's modelling choice
  (mixtures of Poissons are overdispersed *marginally* but must be
  equidispersed *within class*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy.stats import norm

from .mixture import PoissonMixtureResult

__all__ = [
    "DispersionTest",
    "dispersion_index",
    "cameron_trivedi_test",
    "within_class_dispersion",
]


def dispersion_index(counts: Sequence[float]) -> float:
    """Variance-to-mean ratio; 1 under a homogeneous Poisson."""
    data = np.asarray(counts, dtype=float)
    if len(data) < 2:
        raise ValueError("need at least two observations")
    mean = data.mean()
    if mean == 0:
        return 0.0
    return float(data.var(ddof=1) / mean)


@dataclass(frozen=True)
class DispersionTest:
    """Cameron–Trivedi test outcome."""

    statistic: float   # asymptotically N(0,1) under equidispersion
    p_value: float     # one-sided (overdispersion alternative)
    alpha: float       # estimated dispersion coefficient

    @property
    def overdispersed(self) -> bool:
        return self.p_value < 0.05 and self.alpha > 0


def cameron_trivedi_test(
    y: Sequence[float], mu: Sequence[float]
) -> DispersionTest:
    """Cameron–Trivedi (1990) overdispersion test.

    Regress ``((y - mu)^2 - y) / mu`` on ``mu`` without intercept; the
    slope estimates the NB2 dispersion ``alpha`` and its t-statistic is
    asymptotically standard normal under the Poisson null.
    """
    y = np.asarray(y, dtype=float)
    mu = np.asarray(mu, dtype=float)
    if y.shape != mu.shape or y.ndim != 1:
        raise ValueError("y and mu must be aligned 1-D arrays")
    if np.any(mu <= 0):
        raise ValueError("fitted means must be positive")
    z = ((y - mu) ** 2 - y) / mu
    x = mu
    denom = float((x * x).sum())
    if denom == 0:
        return DispersionTest(0.0, 1.0, 0.0)
    alpha = float((x * z).sum() / denom)
    residuals = z - alpha * x
    sigma2 = float((residuals**2).sum() / max(1, len(y) - 1))
    se = np.sqrt(sigma2 / denom) if sigma2 > 0 else 0.0
    statistic = alpha / se if se > 0 else 0.0
    p_value = float(norm.sf(statistic))
    return DispersionTest(statistic=float(statistic), p_value=p_value, alpha=alpha)


def within_class_dispersion(
    Y: np.ndarray,
    mixture: PoissonMixtureResult,
    min_members: int = 20,
) -> Dict[int, float]:
    """Mean dispersion index per latent class (features averaged).

    Assigns each row of ``Y`` to its posterior class and computes the
    variance/mean ratio of each feature within each sufficiently large
    class, averaged over features with non-zero mean.  Values near 1
    support the paper's "non-overdispersed" Poisson modelling choice.
    """
    Y = np.asarray(Y, dtype=float)
    labels = mixture.assign(Y)
    result: Dict[int, float] = {}
    for klass in range(mixture.k):
        members = Y[labels == klass]
        if len(members) < min_members:
            continue
        ratios: List[float] = []
        for column in range(Y.shape[1]):
            mean = members[:, column].mean()
            if mean > 0.05:
                ratios.append(members[:, column].var(ddof=1) / mean)
        if ratios:
            result[klass] = float(np.mean(ratios))
    return result
