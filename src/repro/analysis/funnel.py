"""The contract process funnel (the paper's Appendix, Figure 14).

A proposed contract either gets *denied*, *expires* after 72 hours, or is
accepted into an active deal; an accepted deal then completes, is
cancelled, stays incomplete, or ends disputed.  This module reconstructs
that funnel from terminal statuses: stage-1 outcomes (accepted vs
denied/expired) and stage-2 outcomes (conditional on acceptance), overall
and per era — quantifying the process diagram the appendix only draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.dataset import MarketDataset
from ..core.kernels import count_dispatch
from ..core.entities import Contract, ContractStatus
from ..core.eras import ERAS, Era

__all__ = ["FunnelStage", "ContractFunnel", "contract_funnel", "funnel_by_era"]

#: Statuses implying the proposal was never accepted.
_REJECTED = (ContractStatus.DENIED, ContractStatus.EXPIRED)
#: Terminal outcomes of an accepted deal.
_ACCEPTED_OUTCOMES = (
    ContractStatus.COMPLETE,
    ContractStatus.INCOMPLETE,
    ContractStatus.CANCELLED,
    ContractStatus.DISPUTED,
)


@dataclass(frozen=True)
class FunnelStage:
    """One funnel transition: label, count, share of the previous stage."""

    label: str
    count: int
    share: float


@dataclass
class ContractFunnel:
    """The two-stage contract funnel for one contract population."""

    total_proposed: int
    stages: List[FunnelStage]

    def stage(self, label: str) -> FunnelStage:
        for stage in self.stages:
            if stage.label == label:
                return stage
        raise KeyError(label)

    @property
    def acceptance_rate(self) -> float:
        return self.stage("accepted").share

    @property
    def completion_given_accept(self) -> float:
        return self.stage("complete").share

    def lines(self) -> List[str]:
        out = [f"proposed: {self.total_proposed:,}"]
        for stage in self.stages:
            out.append(f"  {stage.label:<12s} {stage.count:>9,}  ({stage.share:.1%})")
        return out


def _funnel_from_status_counts(by_status: Dict[ContractStatus, int]) -> ContractFunnel:
    """Assemble the two-stage funnel from per-status counts."""
    total = sum(by_status.values())
    denied = by_status.get(ContractStatus.DENIED, 0)
    expired = by_status.get(ContractStatus.EXPIRED, 0)
    accepted = total - denied - expired
    live = by_status.get(ContractStatus.ACTIVE_DEAL, 0)
    terminal_accepted = accepted - live

    stages = [
        FunnelStage("denied", denied, denied / total if total else 0.0),
        FunnelStage("expired", expired, expired / total if total else 0.0),
        FunnelStage("accepted", accepted, accepted / total if total else 0.0),
        FunnelStage("still active", live, live / accepted if accepted else 0.0),
    ]
    for status in _ACCEPTED_OUTCOMES:
        count = by_status.get(status, 0)
        stages.append(
            FunnelStage(
                status.value.replace("_", " "),
                count,
                count / terminal_accepted if terminal_accepted else 0.0,
            )
        )
    return ContractFunnel(total_proposed=total, stages=stages)


def contract_funnel(
    dataset: MarketDataset,
    contracts: Optional[Sequence[Contract]] = None,
    fast: bool = True,
) -> ContractFunnel:
    """Build the funnel over all contracts (or a subset).

    ACTIVE_DEAL contracts count as accepted with no terminal outcome yet;
    their stage-2 shares use accepted-and-terminal as the denominator.
    ``fast`` (whole-dataset calls only) tallies statuses with a single
    ``np.bincount`` over the columnar store.
    """
    count_dispatch(fast and contracts is None)
    if fast and contracts is None:
        import numpy as np

        from ..core.columns import STATUS_ORDER

        store = dataset.columns()
        counts = np.bincount(store.status, minlength=len(STATUS_ORDER))
        return _funnel_from_status_counts(
            {status: int(counts[i]) for i, status in enumerate(STATUS_ORDER)}
        )

    subset = list(contracts) if contracts is not None else dataset.contracts
    by_status: Dict[ContractStatus, int] = {}
    for contract in subset:
        by_status[contract.status] = by_status.get(contract.status, 0) + 1
    return _funnel_from_status_counts(by_status)


def funnel_by_era(dataset: MarketDataset, fast: bool = True) -> Dict[str, ContractFunnel]:
    """The funnel per era (by creation date)."""
    count_dispatch(fast)
    if fast:
        import numpy as np

        from ..core.columns import STATUS_ORDER

        store = dataset.columns()
        n_status = len(STATUS_ORDER)
        in_era = store.era_idx >= 0
        grid = np.bincount(
            store.era_idx[in_era].astype(np.int64) * n_status
            + store.status[in_era],
            minlength=len(ERAS) * n_status,
        ).reshape(len(ERAS), n_status)
        return {
            era.name: _funnel_from_status_counts(
                {status: int(grid[i, j]) for j, status in enumerate(STATUS_ORDER)}
            )
            for i, era in enumerate(ERAS)
        }
    return {
        era.name: contract_funnel(dataset, dataset.in_era(era), fast=False)
        for era in ERAS
    }
