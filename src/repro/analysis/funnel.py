"""The contract process funnel (the paper's Appendix, Figure 14).

A proposed contract either gets *denied*, *expires* after 72 hours, or is
accepted into an active deal; an accepted deal then completes, is
cancelled, stays incomplete, or ends disputed.  This module reconstructs
that funnel from terminal statuses: stage-1 outcomes (accepted vs
denied/expired) and stage-2 outcomes (conditional on acceptance), overall
and per era — quantifying the process diagram the appendix only draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.dataset import MarketDataset
from ..core.entities import Contract, ContractStatus
from ..core.eras import ERAS, Era

__all__ = ["FunnelStage", "ContractFunnel", "contract_funnel", "funnel_by_era"]

#: Statuses implying the proposal was never accepted.
_REJECTED = (ContractStatus.DENIED, ContractStatus.EXPIRED)
#: Terminal outcomes of an accepted deal.
_ACCEPTED_OUTCOMES = (
    ContractStatus.COMPLETE,
    ContractStatus.INCOMPLETE,
    ContractStatus.CANCELLED,
    ContractStatus.DISPUTED,
)


@dataclass(frozen=True)
class FunnelStage:
    """One funnel transition: label, count, share of the previous stage."""

    label: str
    count: int
    share: float


@dataclass
class ContractFunnel:
    """The two-stage contract funnel for one contract population."""

    total_proposed: int
    stages: List[FunnelStage]

    def stage(self, label: str) -> FunnelStage:
        for stage in self.stages:
            if stage.label == label:
                return stage
        raise KeyError(label)

    @property
    def acceptance_rate(self) -> float:
        return self.stage("accepted").share

    @property
    def completion_given_accept(self) -> float:
        return self.stage("complete").share

    def lines(self) -> List[str]:
        out = [f"proposed: {self.total_proposed:,}"]
        for stage in self.stages:
            out.append(f"  {stage.label:<12s} {stage.count:>9,}  ({stage.share:.1%})")
        return out


def contract_funnel(
    dataset: MarketDataset, contracts: Optional[Sequence[Contract]] = None
) -> ContractFunnel:
    """Build the funnel over all contracts (or a subset).

    ACTIVE_DEAL contracts count as accepted with no terminal outcome yet;
    their stage-2 shares use accepted-and-terminal as the denominator.
    """
    subset = list(contracts) if contracts is not None else dataset.contracts
    total = len(subset)
    denied = sum(1 for c in subset if c.status == ContractStatus.DENIED)
    expired = sum(1 for c in subset if c.status == ContractStatus.EXPIRED)
    accepted = total - denied - expired
    live = sum(1 for c in subset if c.status == ContractStatus.ACTIVE_DEAL)
    terminal_accepted = accepted - live

    stages = [
        FunnelStage("denied", denied, denied / total if total else 0.0),
        FunnelStage("expired", expired, expired / total if total else 0.0),
        FunnelStage("accepted", accepted, accepted / total if total else 0.0),
        FunnelStage("still active", live, live / accepted if accepted else 0.0),
    ]
    for status in _ACCEPTED_OUTCOMES:
        count = sum(1 for c in subset if c.status == status)
        stages.append(
            FunnelStage(
                status.value.replace("_", " "),
                count,
                count / terminal_accepted if terminal_accepted else 0.0,
            )
        )
    return ContractFunnel(total_proposed=total, stages=stages)


def funnel_by_era(dataset: MarketDataset) -> Dict[str, ContractFunnel]:
    """The funnel per era (by creation date)."""
    return {
        era.name: contract_funnel(dataset, dataset.in_era(era)) for era in ERAS
    }
