"""Payment-method analysis (§4.4): Table 4 and Figure 10.

Contracts classified into *currency exchange*, *payments* or *giftcard*
are run through the payment-method regex set; counts are reported per
side with unique users, exactly like the activity table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.dataset import MarketDataset
from ..core.entities import Contract
from ..core.timeutils import Month, month_of
from ..text.payments import PAYMENT_LABELS, PAYMENT_METHODS, PaymentExtractor
from ..text.taxonomy import PAYMENT_RELATED_CATEGORIES, ActivityCategorizer

__all__ = [
    "PaymentRow",
    "PaymentTable",
    "payment_related_contracts",
    "top_payment_methods",
    "payment_evolution",
]


@dataclass
class PaymentRow:
    """One Table 4 row: contract and unique-user counts for a method."""

    method: str
    label: str
    maker_contracts: int = 0
    maker_users: Set[int] = field(default_factory=set)
    taker_contracts: int = 0
    taker_users: Set[int] = field(default_factory=set)
    both_contracts: int = 0
    both_users: Set[int] = field(default_factory=set)

    @property
    def transactions_per_trader(self) -> float:
        """Repeat-transaction rate (the paper notes V-bucks tops at 8.37)."""
        users = len(self.both_users)
        return self.both_contracts / users if users else 0.0


@dataclass
class PaymentTable:
    """Table 4: per-method rows plus an all-methods summary row."""

    rows: Dict[str, PaymentRow]
    all_row: PaymentRow
    n_contracts: int

    def top(self, count: int = 10) -> List[PaymentRow]:
        rows = sorted(self.rows.values(), key=lambda r: -r.both_contracts)
        return [row for row in rows if row.both_contracts > 0][:count]

    def share(self, method: str) -> float:
        row = self.rows.get(method)
        if row is None or not self.all_row.both_contracts:
            return 0.0
        return row.both_contracts / self.all_row.both_contracts


def payment_related_contracts(
    dataset: MarketDataset,
    categorizer: Optional[ActivityCategorizer] = None,
    contracts: Optional[Sequence[Contract]] = None,
) -> List[Contract]:
    """Completed public contracts in currency-exchange/payments/giftcard."""
    categorizer = categorizer or ActivityCategorizer()
    subset = list(contracts) if contracts is not None else dataset.completed_public()
    selected: List[Contract] = []
    for contract in subset:
        categories = categorizer.categorize_sides(
            contract.maker_obligation, contract.taker_obligation
        )
        if categories & PAYMENT_RELATED_CATEGORIES:
            selected.append(contract)
    return selected


def top_payment_methods(
    dataset: MarketDataset,
    categorizer: Optional[ActivityCategorizer] = None,
    extractor: Optional[PaymentExtractor] = None,
    contracts: Optional[Sequence[Contract]] = None,
) -> PaymentTable:
    """Table 4: payment methods in completed public payment-related deals."""
    extractor = extractor or PaymentExtractor()
    selected = payment_related_contracts(dataset, categorizer, contracts)

    rows: Dict[str, PaymentRow] = {
        key: PaymentRow(key, PAYMENT_LABELS.get(key, key)) for key in PAYMENT_METHODS
    }
    all_row = PaymentRow("all", "All Methods")

    for contract in selected:
        maker_methods = extractor.extract(contract.maker_obligation)
        taker_methods = extractor.extract(contract.taker_obligation)
        both_methods = maker_methods | taker_methods
        for method in maker_methods:
            rows[method].maker_contracts += 1
            rows[method].maker_users.add(contract.maker_id)
        for method in taker_methods:
            rows[method].taker_contracts += 1
            rows[method].taker_users.add(contract.taker_id)
        for method in both_methods:
            rows[method].both_contracts += 1
            rows[method].both_users.add(contract.maker_id)
            rows[method].both_users.add(contract.taker_id)
        if maker_methods:
            all_row.maker_contracts += 1
            all_row.maker_users.add(contract.maker_id)
        if taker_methods:
            all_row.taker_contracts += 1
            all_row.taker_users.add(contract.taker_id)
        if both_methods:
            all_row.both_contracts += 1
            all_row.both_users.add(contract.maker_id)
            all_row.both_users.add(contract.taker_id)

    return PaymentTable(rows=rows, all_row=all_row, n_contracts=len(selected))


def payment_evolution(
    dataset: MarketDataset,
    categorizer: Optional[ActivityCategorizer] = None,
    extractor: Optional[PaymentExtractor] = None,
    top_n: int = 5,
) -> Dict[str, Dict[Month, int]]:
    """Figure 10: monthly completed contracts per top payment method."""
    extractor = extractor or PaymentExtractor()
    selected = payment_related_contracts(dataset, categorizer)

    monthly: Dict[str, Dict[Month, int]] = {}
    totals: Dict[str, int] = {}
    for contract in selected:
        methods = extractor.extract_sides(
            contract.maker_obligation, contract.taker_obligation
        )
        month = month_of(contract.created_at)
        for method in methods:
            monthly.setdefault(method, {})
            monthly[method][month] = monthly[method].get(month, 0) + 1
            totals[method] = totals.get(method, 0) + 1

    winners = sorted(totals, key=lambda m: -totals[m])[:top_n]
    return {method: dict(sorted(monthly[method].items())) for method in winners}
