"""Maker/taker participation distributions (§4.3's opening numbers).

"Most makers initiate only a small number of contracts, with 49% making
one transaction, 16% making two, and only 5% exceeding 20.  Few makers
account for the long tail, with just two users initiating over 700
contracts.  Equally, most takers accept few contracts ... the tail is
longer for takers than makers, with two takers accepting more than 9,000
contracts."

This module computes those distributions over any contract subset.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dataset import MarketDataset
from ..core.entities import Contract

__all__ = ["ParticipationStats", "participation_stats", "maker_taker_report"]


@dataclass
class ParticipationStats:
    """Distribution of per-user contract counts for one role."""

    role: str                       # "maker" or "taker"
    n_users: int
    share_exactly_one: float
    share_exactly_two: float
    share_over_20: float
    top_counts: List[int]           # the largest per-user counts, descending
    total_contracts: int

    @property
    def mean_per_user(self) -> float:
        return self.total_contracts / self.n_users if self.n_users else 0.0


def _stats_for(counts: Dict[int, int], role: str) -> ParticipationStats:
    n = len(counts)
    values = sorted(counts.values(), reverse=True)
    ones = sum(1 for v in values if v == 1)
    twos = sum(1 for v in values if v == 2)
    over20 = sum(1 for v in values if v > 20)
    return ParticipationStats(
        role=role,
        n_users=n,
        share_exactly_one=ones / n if n else 0.0,
        share_exactly_two=twos / n if n else 0.0,
        share_over_20=over20 / n if n else 0.0,
        top_counts=values[:5],
        total_contracts=sum(values),
    )


def participation_stats(
    dataset: MarketDataset,
    contracts: Optional[Sequence[Contract]] = None,
) -> Tuple[ParticipationStats, ParticipationStats]:
    """Per-user initiation and acceptance distributions.

    Returns ``(makers, takers)`` over all contracts by default, or over a
    supplied subset (e.g. completed only).
    """
    subset = list(contracts) if contracts is not None else dataset.contracts
    maker_counts: Counter = Counter(c.maker_id for c in subset)
    taker_counts: Counter = Counter(c.taker_id for c in subset)
    return _stats_for(maker_counts, "maker"), _stats_for(taker_counts, "taker")


def maker_taker_report(dataset: MarketDataset) -> List[str]:
    """§4.3's participation narrative as printable lines."""
    makers, takers = participation_stats(dataset)
    lines = []
    for stats in (makers, takers):
        verb = "initiate" if stats.role == "maker" else "accept"
        lines.append(
            f"{stats.role}s: {stats.n_users:,} users {verb} "
            f"{stats.total_contracts:,} contracts "
            f"(mean {stats.mean_per_user:.1f}/user)"
        )
        lines.append(
            f"  exactly one: {stats.share_exactly_one * 100:.0f}%, "
            f"exactly two: {stats.share_exactly_two * 100:.0f}%, "
            f"over 20: {stats.share_over_20 * 100:.0f}%"
        )
        lines.append(
            "  largest per-user counts: "
            + ", ".join(f"{v:,}" for v in stats.top_counts)
        )
    if takers.top_counts and makers.top_counts:
        lines.append(
            "tail is longer for takers"
            if takers.top_counts[0] > makers.top_counts[0]
            else "tail is longer for makers"
        )
    return lines
