"""Monthly series: growth, visibility, type mix, completion times.

Implements Figures 1–4.  Completed contracts are bucketed by their
completion month when the completion date is recorded, otherwise by
creation month (the paper notes only ~70% of completed contracts carry a
completion date; Figure 4 uses only those that do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.columns import month_from_index
from ..core.dataset import MarketDataset
from ..core.kernels import count_dispatch
from ..core.entities import Contract, ContractType
from ..core.timeutils import Month, month_of

__all__ = [
    "GrowthPoint",
    "monthly_growth",
    "visibility_share",
    "type_proportions",
    "completion_times",
    "completion_month",
]


def completion_month(contract: Contract) -> Optional[Month]:
    """Month a completed contract settles in (creation month if undated)."""
    if not contract.is_complete:
        return None
    when = contract.completed_at or contract.created_at
    return month_of(when)


@dataclass
class GrowthPoint:
    """One month of Figure 1."""

    month: Month
    contracts_created: int
    contracts_completed: int
    new_members_created: int    # first-ever party to a created contract
    new_members_completed: int  # first-ever party to a completed contract


def _month_counts(month_idx: np.ndarray) -> Dict[Month, int]:
    """Bincount a month-index column (−1 entries excluded) into a dict."""
    valid = month_idx[month_idx >= 0]
    if not len(valid):
        return {}
    base = int(valid.min())
    counts = np.bincount(valid - base)
    return {
        month_from_index(base + i): int(c) for i, c in enumerate(counts) if c
    }


def _first_month_counts(
    codes: List[np.ndarray], month_idx: List[np.ndarray], n_users: int
) -> Dict[Month, int]:
    """Per-month counts of users whose *first* appearance is that month."""
    sentinel = np.iinfo(np.int64).max
    first = np.full(n_users, sentinel, dtype=np.int64)
    for code, months in zip(codes, month_idx):
        np.minimum.at(first, code, months)
    return _month_counts(np.where(first == sentinel, np.int64(-1), first))


def monthly_growth(dataset: MarketDataset, fast: bool = True) -> List[GrowthPoint]:
    """Figure 1: monthly created/completed contracts and new members.

    ``fast`` runs on the columnar store via ``np.bincount``;
    ``fast=False`` keeps the object-path reference implementation.
    """
    count_dispatch(fast)
    if fast:
        store = dataset.columns()
        created_counts = _month_counts(store.month_idx)
        completed_counts = _month_counts(store.settled_month_idx)
        new_created = _first_month_counts(
            [store.maker_code, store.taker_code],
            [store.month_idx, store.month_idx],
            store.n_users,
        )
        settled = store.settled_month_idx >= 0
        new_completed = _first_month_counts(
            [store.maker_code[settled], store.taker_code[settled]],
            [store.settled_month_idx[settled]] * 2,
            store.n_users,
        )
        months = sorted(set(created_counts) | set(completed_counts))
        return [
            GrowthPoint(
                month=month,
                contracts_created=created_counts.get(month, 0),
                contracts_completed=completed_counts.get(month, 0),
                new_members_created=new_created.get(month, 0),
                new_members_completed=new_completed.get(month, 0),
            )
            for month in months
        ]

    created_counts = {}
    completed_counts = {}
    first_created: Dict[int, Month] = {}
    first_completed: Dict[int, Month] = {}

    for contract in dataset.contracts:
        created_in = month_of(contract.created_at)
        created_counts[created_in] = created_counts.get(created_in, 0) + 1
        for user in contract.parties():
            if user not in first_created or created_in < first_created[user]:
                first_created[user] = created_in
        settled = completion_month(contract)
        if settled is not None:
            completed_counts[settled] = completed_counts.get(settled, 0) + 1
            for user in contract.parties():
                if user not in first_completed or settled < first_completed[user]:
                    first_completed[user] = settled

    new_created = {}
    for month in first_created.values():
        new_created[month] = new_created.get(month, 0) + 1
    new_completed = {}
    for month in first_completed.values():
        new_completed[month] = new_completed.get(month, 0) + 1

    months = sorted(set(created_counts) | set(completed_counts))
    return [
        GrowthPoint(
            month=month,
            contracts_created=created_counts.get(month, 0),
            contracts_completed=completed_counts.get(month, 0),
            new_members_created=new_created.get(month, 0),
            new_members_completed=new_completed.get(month, 0),
        )
        for month in months
    ]


def visibility_share(
    dataset: MarketDataset, fast: bool = True
) -> Dict[Month, Dict[str, float]]:
    """Figure 2: share of public contracts per month.

    Returns ``{month: {"created": share, "completed": share}}``.
    """
    count_dispatch(fast)
    if fast:
        store = dataset.columns()
        created_total = _month_counts(store.month_idx)
        created_public = _month_counts(store.month_idx[store.is_public])
        completed_total = _month_counts(store.settled_month_idx)
        completed_public = _month_counts(store.settled_month_idx[store.is_public])
        result: Dict[Month, Dict[str, float]] = {}
        for month in sorted(set(created_total) | set(completed_total)):
            created = created_total.get(month, 0)
            completed = completed_total.get(month, 0)
            result[month] = {
                "created": created_public.get(month, 0) / created if created else 0.0,
                "completed": completed_public.get(month, 0) / completed if completed else 0.0,
            }
        return result

    created_total = {}
    created_public = {}
    completed_total = {}
    completed_public = {}
    for contract in dataset.contracts:
        month = month_of(contract.created_at)
        created_total[month] = created_total.get(month, 0) + 1
        if contract.is_public:
            created_public[month] = created_public.get(month, 0) + 1
        settled = completion_month(contract)
        if settled is not None:
            completed_total[settled] = completed_total.get(settled, 0) + 1
            if contract.is_public:
                completed_public[settled] = completed_public.get(settled, 0) + 1

    result = {}
    for month in sorted(set(created_total) | set(completed_total)):
        created = created_total.get(month, 0)
        completed = completed_total.get(month, 0)
        result[month] = {
            "created": created_public.get(month, 0) / created if created else 0.0,
            "completed": completed_public.get(month, 0) / completed if completed else 0.0,
        }
    return result


def type_proportions(
    dataset: MarketDataset, completed_only: bool = False, fast: bool = True
) -> Dict[Month, Dict[ContractType, float]]:
    """Figure 3: monthly share of each contract type.

    Shares are of contracts created that month (or completed, when
    ``completed_only``); they sum to 1 per month.
    """
    count_dispatch(fast)
    if fast:
        from ..core.columns import CTYPE_ORDER

        store = dataset.columns()
        month_idx = store.settled_month_idx if completed_only else store.month_idx
        valid = month_idx >= 0
        months_v = month_idx[valid]
        types_v = store.ctype[valid].astype(np.int64)
        if not len(months_v):
            return {}
        base = int(months_v.min())
        n_types = len(CTYPE_ORDER)
        grid = np.bincount(
            (months_v - base) * n_types + types_v,
            minlength=(int(months_v.max()) - base + 1) * n_types,
        ).reshape(-1, n_types)
        result: Dict[Month, Dict[ContractType, float]] = {}
        for offset, row in enumerate(grid):
            total = int(row.sum())
            if not total:
                continue
            result[month_from_index(base + offset)] = {
                ctype: int(row[code]) / total
                for code, ctype in enumerate(CTYPE_ORDER)
            }
        return result

    counts: Dict[Month, Dict[ContractType, int]] = {}
    for contract in dataset.contracts:
        if completed_only:
            month = completion_month(contract)
            if month is None:
                continue
        else:
            month = month_of(contract.created_at)
        bucket = counts.setdefault(month, {})
        bucket[contract.ctype] = bucket.get(contract.ctype, 0) + 1

    result = {}
    for month in sorted(counts):
        total = sum(counts[month].values())
        result[month] = {
            ctype: counts[month].get(ctype, 0) / total for ctype in ContractType
        }
    return result


def completion_times(
    dataset: MarketDataset, fast: bool = True
) -> Dict[Month, Dict[ContractType, float]]:
    """Figure 4: average completion hours per type per (creation) month.

    Only contracts with a recorded completion date contribute; months or
    types with no such contracts are absent from the inner dict.
    """
    count_dispatch(fast)
    if fast:
        from ..core.columns import CTYPE_ORDER

        store = dataset.columns()
        mask = store.is_complete & store.has_completed
        if not mask.any():
            return {}
        months_v = store.month_idx[mask]
        types_v = store.ctype[mask].astype(np.int64)
        hours_v = store.completion_hours[mask]
        base = int(months_v.min())
        n_types = len(CTYPE_ORDER)
        cells = (months_v - base) * n_types + types_v
        n_cells = (int(months_v.max()) - base + 1) * n_types
        sums_grid = np.zeros(n_cells, dtype=np.float64)
        np.add.at(sums_grid, cells, hours_v)
        counts_grid = np.bincount(cells, minlength=n_cells)
        result: Dict[Month, Dict[ContractType, float]] = {}
        for offset in range(n_cells // n_types):
            row = slice(offset * n_types, (offset + 1) * n_types)
            row_counts = counts_grid[row]
            if not row_counts.any():
                continue
            result[month_from_index(base + offset)] = {
                CTYPE_ORDER[code]: float(
                    sums_grid[offset * n_types + code] / row_counts[code]
                )
                for code in range(n_types)
                if row_counts[code]
            }
        return result

    sums: Dict[Month, Dict[ContractType, float]] = {}
    counts: Dict[Month, Dict[ContractType, int]] = {}
    for contract in dataset.contracts:
        hours = contract.completion_hours
        if hours is None or not contract.is_complete:
            continue
        month = month_of(contract.created_at)
        sums.setdefault(month, {}).setdefault(contract.ctype, 0.0)
        counts.setdefault(month, {}).setdefault(contract.ctype, 0)
        sums[month][contract.ctype] += hours
        counts[month][contract.ctype] += 1

    return {
        month: {
            ctype: sums[month][ctype] / counts[month][ctype]
            for ctype in sums[month]
        }
        for month in sorted(sums)
    }
