"""Thread and post analysis (§3's advertisement-thread statistics).

The paper notes 68.4% of public contracts are associated with a thread
(8.2% of all contracts), that the dataset holds ~6,000 threads and
~200,000 posts by ~30,000 members, and (Figure 5) that thread-linked
trade concentrates on a small set of popular threads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.dataset import MarketDataset
from ..core.timeutils import Month, month_of
from ..stats.descriptive import gini, top_share

__all__ = [
    "ThreadStats",
    "thread_stats",
    "contracts_per_thread",
    "posts_per_thread",
    "posting_members_by_month",
]


@dataclass
class ThreadStats:
    """Headline thread/post statistics (§3)."""

    n_threads: int
    n_posts: int
    n_posting_members: int
    public_contracts: int
    public_with_thread: int
    thread_link_share_public: float   # paper: 68.4%
    thread_link_share_all: float      # paper: 8.2%
    posts_per_thread_mean: float
    top10pct_thread_contract_share: float
    thread_contract_gini: float


def contracts_per_thread(dataset: MarketDataset) -> Dict[int, int]:
    """Thread id -> number of linked contracts (threads with >=1 link)."""
    counts: Counter = Counter()
    for contract in dataset.contracts:
        if contract.thread_id is not None:
            counts[contract.thread_id] += 1
    return dict(counts)


def posts_per_thread(dataset: MarketDataset) -> Dict[int, int]:
    """Thread id -> number of posts."""
    counts: Counter = Counter(post.thread_id for post in dataset.posts)
    return dict(counts)


def posting_members_by_month(dataset: MarketDataset) -> Dict[Month, int]:
    """Distinct posting members per month."""
    members: Dict[Month, set] = {}
    for post in dataset.posts:
        members.setdefault(month_of(post.created_at), set()).add(post.author_id)
    return {month: len(users) for month, users in sorted(members.items())}


def thread_stats(dataset: MarketDataset) -> ThreadStats:
    """Compute §3's thread/post headline numbers."""
    publics = dataset.public()
    with_thread_public = sum(1 for c in publics if c.thread_id is not None)
    with_thread_all = sum(1 for c in dataset.contracts if c.thread_id is not None)
    per_thread = contracts_per_thread(dataset)
    values = list(per_thread.values())
    posting_members = {post.author_id for post in dataset.posts}
    return ThreadStats(
        n_threads=len(dataset.threads),
        n_posts=len(dataset.posts),
        n_posting_members=len(posting_members),
        public_contracts=len(publics),
        public_with_thread=with_thread_public,
        thread_link_share_public=(
            with_thread_public / len(publics) if publics else 0.0
        ),
        thread_link_share_all=(
            with_thread_all / len(dataset.contracts) if len(dataset) else 0.0
        ),
        posts_per_thread_mean=(
            len(dataset.posts) / len(dataset.threads) if dataset.threads else 0.0
        ),
        top10pct_thread_contract_share=top_share(values, 10.0) if values else 0.0,
        thread_contract_gini=gini(values) if values else 0.0,
    )
