"""Incremental kernels over month-partitioned stores.

The resident kernels (:mod:`repro.analysis.monthly`, ``taxonomy``,
``funnel``, ``centralisation``, :mod:`repro.network.degrees`) each take
a materialized dataset whose columns span the whole history.  The
kernels here compute the *same results* — identical result objects,
value for value — by folding one
:class:`~repro.core.partitions.MonthPartition` at a time, so a windowed
or per-era query touches only the months it needs and peak memory is
one partition plus a compact partial state.

Every kernel follows the same three-method contract:

``update(partition)``
    Fold one month partition into the partial state.  Partitions may
    arrive in any order; each must be folded exactly once.
``merge(other)``
    Absorb another kernel's partial state (same kernel type and
    parameters).  States built from disjoint partition sets merge into
    the state of the union — the algebra is commutative and
    associative, so partitions can be folded on separate workers and
    combined.
``finalize()``
    Produce the resident kernel's result type.  ``finalize`` is a pure
    read of the state; it can be called repeatedly.

Parity: each kernel mirrors its resident counterpart's formulas (the
shared helpers in :mod:`repro.core.columns` guarantee identical month
and era bucketing), and ``tests/test_streaming_kernels.py`` asserts
exact equality against the resident kernels on both engines.  The only
representational difference is that partial states key actors by raw
id where resident kernels use table-position codes; every published
number is invariant to that relabeling.

Typical use::

    store, _ = cached_partitioned_store(scale=1.0)
    kernels = [MonthlyVolumeKernel(), EraFunnelKernel()]
    fold_partitions(store, kernels, era="covid19")   # opens 4 months
    growth = kernels[0].finalize()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.columns import CTYPE_ORDER, STATUS_ORDER, month_from_index
from ..core.eras import ERAS
from ..core.partitions import MonthPartition, PartitionStore
from ..core.timeutils import Month
from ..network.degrees import DegreeGrowthPoint
from ..obs.tracer import get_tracer
from ..stats.descriptive import gini
from .centralisation import (
    KEY_PERCENT,
    ConcentrationCurves,
    KeySharePoint,
    _curve_from_values,
    _key_share_values,
)
from .funnel import ContractFunnel, _funnel_from_status_counts
from .monthly import GrowthPoint
from .taxonomy import TaxonomyTable

__all__ = [
    "StreamingKernel",
    "MonthlyVolumeKernel",
    "TypeMixKernel",
    "TaxonomyKernel",
    "FunnelKernel",
    "EraFunnelKernel",
    "KeyShareKernel",
    "ConcentrationKernel",
    "DegreeGrowthKernel",
    "fold_partitions",
    "streaming_monthly_growth",
    "streaming_type_proportions",
    "streaming_contract_taxonomy",
    "streaming_contract_funnel",
    "streaming_funnel_by_era",
    "streaming_key_share_by_month",
    "streaming_concentration_curves",
    "streaming_degree_growth",
]

_MAX64 = np.iinfo(np.int64).max


class StreamingKernel:
    """Base contract: fold partitions, merge states, emit the result."""

    def update(self, partition: MonthPartition) -> None:
        raise NotImplementedError

    def merge(self, other: "StreamingKernel") -> "StreamingKernel":
        raise NotImplementedError

    def finalize(self):
        raise NotImplementedError


# --------------------------------------------------------------------- #
# small mergeable primitives
# --------------------------------------------------------------------- #


class _MinById:
    """Per-id running minimum (id -> smallest value seen); mergeable."""

    def __init__(self) -> None:
        self._min: Dict[int, int] = {}

    def fold(self, ids: np.ndarray, values: np.ndarray) -> None:
        if not len(ids):
            return
        unique, inverse = np.unique(ids, return_inverse=True)
        best = np.full(len(unique), _MAX64, dtype=np.int64)
        np.minimum.at(best, inverse, np.asarray(values, dtype=np.int64))
        current = self._min
        for key, value in zip(unique.tolist(), best.tolist()):
            prior = current.get(key)
            if prior is None or value < prior:
                current[key] = value

    def merge(self, other: "_MinById") -> None:
        current = self._min
        for key, value in other._min.items():
            prior = current.get(key)
            if prior is None or value < prior:
                current[key] = value

    def value_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for value in self._min.values():
            counts[value] = counts.get(value, 0) + 1
        return counts


class _CountById:
    """Per-id running sum as (ids, counts) arrays; compacted lazily."""

    def __init__(self) -> None:
        self._ids: List[np.ndarray] = []
        self._counts: List[np.ndarray] = []

    def fold_repeats(self, ids: np.ndarray) -> None:
        """Add one occurrence per element of ``ids`` (repeats allowed)."""
        if not len(ids):
            return
        unique, counts = np.unique(ids, return_counts=True)
        self._ids.append(unique)
        self._counts.append(counts.astype(np.int64))

    def merge(self, other: "_CountById") -> None:
        self._ids.extend(other._ids)
        self._counts.extend(other._counts)

    def values(self) -> np.ndarray:
        """Final per-id totals (order unspecified; ids dropped)."""
        if not self._ids:
            return np.zeros(0, dtype=np.int64)
        ids = np.concatenate(self._ids)
        counts = np.concatenate(self._counts)
        unique, inverse = np.unique(ids, return_inverse=True)
        totals = np.zeros(len(unique), dtype=np.int64)
        np.add.at(totals, inverse, counts)
        return totals


def _merge_count_maps(
    mine: Dict[int, "_CountById"], theirs: Dict[int, "_CountById"]
) -> None:
    for key, counter in theirs.items():
        held = mine.get(key)
        if held is None:
            mine[key] = counter
        else:
            held.merge(counter)


def _month_dict(counts: Dict[int, int]) -> Dict[Month, int]:
    return {
        month_from_index(idx): count
        for idx, count in sorted(counts.items())
        if count
    }


# --------------------------------------------------------------------- #
# monthly volume (Figure 1)
# --------------------------------------------------------------------- #


class MonthlyVolumeKernel(StreamingKernel):
    """Incremental :func:`repro.analysis.monthly.monthly_growth`.

    Created counts land in the partition's own month; completed counts
    and first-appearance months use ``settled_month_idx``, which can
    point months ahead of the partition (late completion dates), so
    those live in mergeable per-month states.
    """

    def __init__(self) -> None:
        self._created: Dict[int, int] = {}
        self._completed: Dict[int, int] = {}
        self._first_created = _MinById()
        self._first_completed = _MinById()

    def update(self, partition: MonthPartition) -> None:
        month_idx = partition.month_idx
        n = partition.n_contracts
        if not n:
            return
        self._created[month_idx] = self._created.get(month_idx, 0) + n
        settled = partition.settled_month_idx
        done = settled >= 0
        for idx, count in zip(*np.unique(settled[done], return_counts=True)):
            idx = int(idx)
            self._completed[idx] = self._completed.get(idx, 0) + int(count)
        parties = np.concatenate([partition.maker_id, partition.taker_id])
        self._first_created.fold(
            parties, np.full(len(parties), month_idx, dtype=np.int64)
        )
        settled_parties = np.concatenate(
            [partition.maker_id[done], partition.taker_id[done]]
        )
        self._first_completed.fold(
            settled_parties, np.concatenate([settled[done], settled[done]])
        )

    def merge(self, other: "MonthlyVolumeKernel") -> "MonthlyVolumeKernel":
        for idx, count in other._created.items():
            self._created[idx] = self._created.get(idx, 0) + count
        for idx, count in other._completed.items():
            self._completed[idx] = self._completed.get(idx, 0) + count
        self._first_created.merge(other._first_created)
        self._first_completed.merge(other._first_completed)
        return self

    def finalize(self) -> List[GrowthPoint]:
        created = _month_dict(self._created)
        completed = _month_dict(self._completed)
        new_created = _month_dict(self._first_created.value_counts())
        new_completed = _month_dict(self._first_completed.value_counts())
        return [
            GrowthPoint(
                month=month,
                contracts_created=created.get(month, 0),
                contracts_completed=completed.get(month, 0),
                new_members_created=new_created.get(month, 0),
                new_members_completed=new_completed.get(month, 0),
            )
            for month in sorted(set(created) | set(completed))
        ]


# --------------------------------------------------------------------- #
# type mix (Figure 3) and taxonomy (Table 1)
# --------------------------------------------------------------------- #


class TypeMixKernel(StreamingKernel):
    """Incremental :func:`repro.analysis.monthly.type_proportions`."""

    def __init__(self, completed_only: bool = False) -> None:
        self.completed_only = completed_only
        self._rows: Dict[int, np.ndarray] = {}

    def update(self, partition: MonthPartition) -> None:
        if not partition.n_contracts:
            return
        n_types = len(CTYPE_ORDER)
        types = partition.ctype.astype(np.int64)
        if self.completed_only:
            months = partition.settled_month_idx
            valid = months >= 0
            months, types = months[valid], types[valid]
        else:
            months = np.full(len(types), partition.month_idx, dtype=np.int64)
        for idx in np.unique(months).tolist():
            row = self._rows.setdefault(idx, np.zeros(n_types, dtype=np.int64))
            row += np.bincount(types[months == idx], minlength=n_types)

    def merge(self, other: "TypeMixKernel") -> "TypeMixKernel":
        for idx, row in other._rows.items():
            held = self._rows.get(idx)
            if held is None:
                self._rows[idx] = row
            else:
                held += row
        return self

    def finalize(self) -> Dict[Month, Dict]:
        result: Dict[Month, Dict] = {}
        for idx in sorted(self._rows):
            row = self._rows[idx]
            total = int(row.sum())
            if not total:
                continue
            result[month_from_index(idx)] = {
                ctype: int(row[code]) / total
                for code, ctype in enumerate(CTYPE_ORDER)
            }
        return result


class TaxonomyKernel(StreamingKernel):
    """Incremental :func:`repro.analysis.taxonomy.contract_taxonomy`."""

    def __init__(self) -> None:
        self._grid = np.zeros(
            (len(CTYPE_ORDER), len(STATUS_ORDER)), dtype=np.int64
        )
        self._total = 0

    def update(self, partition: MonthPartition) -> None:
        if not partition.n_contracts:
            return
        n_status = len(STATUS_ORDER)
        self._grid += np.bincount(
            partition.ctype.astype(np.int64) * n_status + partition.status,
            minlength=self._grid.size,
        ).reshape(self._grid.shape)
        self._total += partition.n_contracts

    def merge(self, other: "TaxonomyKernel") -> "TaxonomyKernel":
        self._grid += other._grid
        self._total += other._total
        return self

    def finalize(self) -> TaxonomyTable:
        counts = {
            (ctype, status): int(self._grid[i, j])
            for i, ctype in enumerate(CTYPE_ORDER)
            for j, status in enumerate(STATUS_ORDER)
            if self._grid[i, j]
        }
        return TaxonomyTable(counts=counts, total=self._total)


# --------------------------------------------------------------------- #
# funnel (Figure 14), overall and per era
# --------------------------------------------------------------------- #


class FunnelKernel(StreamingKernel):
    """Incremental :func:`repro.analysis.funnel.contract_funnel`.

    With ``era_index`` set, only rows created in that era count — fold
    it over ``store.iter_months(era=...)`` and the boundary month's
    out-of-era rows are masked away, matching ``funnel_by_era``.
    """

    def __init__(self, era_index: Optional[int] = None) -> None:
        self.era_index = era_index
        self._counts = np.zeros(len(STATUS_ORDER), dtype=np.int64)

    def update(self, partition: MonthPartition) -> None:
        if not partition.n_contracts:
            return
        status = partition.status
        if self.era_index is not None:
            status = status[partition.era_mask(self.era_index)]
        self._counts += np.bincount(status, minlength=len(self._counts))

    def merge(self, other: "FunnelKernel") -> "FunnelKernel":
        self._counts += other._counts
        return self

    def finalize(self) -> ContractFunnel:
        return _funnel_from_status_counts(
            {
                status: int(self._counts[i])
                for i, status in enumerate(STATUS_ORDER)
            }
        )


class EraFunnelKernel(StreamingKernel):
    """Incremental :func:`repro.analysis.funnel.funnel_by_era` (all eras)."""

    def __init__(self) -> None:
        self._grid = np.zeros((len(ERAS), len(STATUS_ORDER)), dtype=np.int64)

    def update(self, partition: MonthPartition) -> None:
        if not partition.n_contracts:
            return
        n_status = len(STATUS_ORDER)
        era_idx = partition.era_idx
        in_era = era_idx >= 0
        self._grid += np.bincount(
            era_idx[in_era].astype(np.int64) * n_status
            + partition.status[in_era],
            minlength=self._grid.size,
        ).reshape(self._grid.shape)

    def merge(self, other: "EraFunnelKernel") -> "EraFunnelKernel":
        self._grid += other._grid
        return self

    def finalize(self) -> Dict[str, ContractFunnel]:
        return {
            era.name: _funnel_from_status_counts(
                {
                    status: int(self._grid[i, j])
                    for j, status in enumerate(STATUS_ORDER)
                }
            )
            for i, era in enumerate(ERAS)
        }


# --------------------------------------------------------------------- #
# centralisation (Figures 5 and 6)
# --------------------------------------------------------------------- #


class KeyShareKernel(StreamingKernel):
    """Incremental :func:`repro.analysis.centralisation.key_share_by_month`."""

    def __init__(self, percent: float = KEY_PERCENT) -> None:
        self.percent = percent
        self._members_created: Dict[int, _CountById] = {}
        self._members_completed: Dict[int, _CountById] = {}
        self._threads_created: Dict[int, _CountById] = {}
        self._threads_completed: Dict[int, _CountById] = {}

    def update(self, partition: MonthPartition) -> None:
        if not partition.n_contracts:
            return
        month_idx = partition.month_idx
        maker, taker = partition.maker_id, partition.taker_id
        thread = partition.thread_id
        threaded = thread >= 0
        self._members_created.setdefault(month_idx, _CountById()).fold_repeats(
            np.concatenate([maker, taker])
        )
        self._threads_created.setdefault(month_idx, _CountById()).fold_repeats(
            thread[threaded]
        )
        settled = partition.settled_month_idx
        for idx in np.unique(settled[settled >= 0]).tolist():
            rows = settled == idx
            self._members_completed.setdefault(
                idx, _CountById()
            ).fold_repeats(np.concatenate([maker[rows], taker[rows]]))
            self._threads_completed.setdefault(
                idx, _CountById()
            ).fold_repeats(thread[rows & threaded])

    def merge(self, other: "KeyShareKernel") -> "KeyShareKernel":
        _merge_count_maps(self._members_created, other._members_created)
        _merge_count_maps(self._members_completed, other._members_completed)
        _merge_count_maps(self._threads_created, other._threads_created)
        _merge_count_maps(self._threads_completed, other._threads_completed)
        return self

    def finalize(self) -> List[KeySharePoint]:
        months = sorted(
            set(self._members_created) | set(self._members_completed)
        )
        empty = _CountById()
        series = []
        for idx in months:
            series.append(
                KeySharePoint(
                    month=month_from_index(idx),
                    key_members_created=_key_share_values(
                        self._members_created.get(idx, empty).values(),
                        self.percent,
                    ),
                    key_members_completed=_key_share_values(
                        self._members_completed.get(idx, empty).values(),
                        self.percent,
                    ),
                    key_threads_created=_key_share_values(
                        self._threads_created.get(idx, empty).values(),
                        self.percent,
                    ),
                    key_threads_completed=_key_share_values(
                        self._threads_completed.get(idx, empty).values(),
                        self.percent,
                    ),
                )
            )
        return series


class ConcentrationKernel(StreamingKernel):
    """Incremental :func:`~repro.analysis.centralisation.concentration_curves`."""

    def __init__(
        self, percents: Sequence[float] = tuple(range(1, 101))
    ) -> None:
        self.percents = tuple(percents)
        self._users_created = _CountById()
        self._users_completed = _CountById()
        self._threads_created = _CountById()
        self._threads_completed = _CountById()

    def update(self, partition: MonthPartition) -> None:
        if not partition.n_contracts:
            return
        maker, taker = partition.maker_id, partition.taker_id
        complete = partition.is_complete
        thread = partition.thread_id
        threaded = thread >= 0
        self._users_created.fold_repeats(np.concatenate([maker, taker]))
        self._users_completed.fold_repeats(
            np.concatenate([maker[complete], taker[complete]])
        )
        self._threads_created.fold_repeats(thread[threaded])
        self._threads_completed.fold_repeats(thread[threaded & complete])

    def merge(self, other: "ConcentrationKernel") -> "ConcentrationKernel":
        self._users_created.merge(other._users_created)
        self._users_completed.merge(other._users_completed)
        self._threads_created.merge(other._threads_created)
        self._threads_completed.merge(other._threads_completed)
        return self

    def finalize(self) -> ConcentrationCurves:
        users_created = self._users_created.values()
        threads_created = self._threads_created.values()
        return ConcentrationCurves(
            users_created=_curve_from_values(users_created, self.percents),
            users_completed=_curve_from_values(
                self._users_completed.values(), self.percents
            ),
            threads_created=_curve_from_values(threads_created, self.percents),
            threads_completed=_curve_from_values(
                self._threads_completed.values(), self.percents
            ),
            user_gini_created=(
                gini(users_created.tolist()) if len(users_created) else 0.0
            ),
            thread_gini_created=(
                gini(threads_created.tolist()) if len(threads_created) else 0.0
            ),
        )


# --------------------------------------------------------------------- #
# degree growth (Figure 8)
# --------------------------------------------------------------------- #


class DegreeGrowthKernel(StreamingKernel):
    """Incremental :func:`repro.network.degrees.degree_growth`.

    Each partition dedups its own edges to (endpoint, endpoint, month)
    triples — the compact state — and ``finalize`` dedups across
    partitions (keeping each edge's earliest month) before replaying
    the cumulative degree arrays exactly as the resident kernel does.
    Endpoint ids are remapped to dense codes at finalize; every
    published value (averages, maxima) is invariant to the remap.
    """

    def __init__(self, completed_only: bool = False) -> None:
        self.completed_only = completed_only
        self._raw: List[Tuple[np.ndarray, np.ndarray, int]] = []
        self._directed: List[Tuple[np.ndarray, np.ndarray, int]] = []
        self._nodes: List[Tuple[np.ndarray, int]] = []

    def update(self, partition: MonthPartition) -> None:
        maker = partition.maker_id.astype(np.int64)
        taker = partition.taker_id.astype(np.int64)
        if self.completed_only:
            mask = partition.is_complete
            maker, taker = maker[mask], taker[mask]
            bidirectional = partition.is_bidirectional[mask]
        else:
            bidirectional = partition.is_bidirectional
        if not len(maker):
            return
        month_idx = partition.month_idx
        low = np.minimum(maker, taker)
        high = np.maximum(maker, taker)
        pairs = np.unique(np.stack([low, high], axis=1), axis=0)
        self._raw.append((pairs[:, 0], pairs[:, 1], month_idx))
        src = np.concatenate([maker, taker[bidirectional]])
        dst = np.concatenate([taker, maker[bidirectional]])
        arrows = np.unique(np.stack([src, dst], axis=1), axis=0)
        self._directed.append((arrows[:, 0], arrows[:, 1], month_idx))
        self._nodes.append((np.unique(np.concatenate([maker, taker])), month_idx))

    def merge(self, other: "DegreeGrowthKernel") -> "DegreeGrowthKernel":
        self._raw.extend(other._raw)
        self._directed.extend(other._directed)
        self._nodes.extend(other._nodes)
        return self

    def finalize(self) -> List[DegreeGrowthPoint]:
        if not self._nodes:
            return []
        node_ids = np.concatenate([ids for ids, _ in self._nodes])
        codes = np.unique(node_ids)
        n = len(codes)

        def first_keys(edges):
            keys = np.concatenate([
                np.searchsorted(codes, a) * n + np.searchsorted(codes, b)
                for a, b, _ in edges
            ])
            months = np.concatenate([
                np.full(len(a), month, dtype=np.int64)
                for a, _, month in edges
            ])
            unique, inverse = np.unique(keys, return_inverse=True)
            first = np.full(len(unique), _MAX64, dtype=np.int64)
            np.minimum.at(first, inverse, months)
            return unique, first

        raw_keys, raw_first = first_keys(self._raw)
        directed_keys, directed_first = first_keys(self._directed)
        node_months = np.concatenate([
            np.full(len(ids), month, dtype=np.int64)
            for ids, month in self._nodes
        ])
        node_codes = np.searchsorted(codes, node_ids)
        node_unique, inverse = np.unique(node_codes, return_inverse=True)
        node_first = np.full(len(node_unique), _MAX64, dtype=np.int64)
        np.minimum.at(node_first, inverse, node_months)

        months_present = [month for _, month in self._nodes]
        deg_raw = np.zeros(n, dtype=np.int64)
        deg_in = np.zeros(n, dtype=np.int64)
        deg_out = np.zeros(n, dtype=np.int64)
        raw_sum = 0
        present = 0
        series: List[DegreeGrowthPoint] = []
        for idx in range(min(months_present), max(months_present) + 1):
            new_raw = raw_keys[raw_first == idx]
            low, high = new_raw // n, new_raw % n
            np.add.at(deg_raw, low, 1)
            selfless = high != low
            np.add.at(deg_raw, high[selfless], 1)
            raw_sum += len(low) + int(selfless.sum())
            new_directed = directed_keys[directed_first == idx]
            np.add.at(deg_out, new_directed // n, 1)
            np.add.at(deg_in, new_directed % n, 1)
            present += int((node_first == idx).sum())
            series.append(
                DegreeGrowthPoint(
                    month=month_from_index(idx),
                    average_raw=raw_sum / present if present else 0.0,
                    max_raw=int(deg_raw.max()),
                    max_inbound=int(deg_in.max()),
                    max_outbound=int(deg_out.max()),
                )
            )
        return series


# --------------------------------------------------------------------- #
# driver
# --------------------------------------------------------------------- #


def fold_partitions(
    store: PartitionStore,
    kernels: Sequence[StreamingKernel],
    months=None,
    start=None,
    end=None,
    era=None,
) -> Sequence[StreamingKernel]:
    """Fold every selected partition through every kernel, once each.

    Partitions stream in month order and are dropped after all kernels
    have seen them; selection (window or era) delegates to
    :meth:`PartitionStore.iter_months`, so only the touched months are
    opened (observable via the ``partition.opened`` counter).  Returns
    ``kernels`` for chaining.
    """
    tracer = get_tracer()
    with tracer.span("streaming.fold"):
        for partition in store.iter_months(
            months=months, start=start, end=end, era=era
        ):
            for kernel in kernels:
                kernel.update(partition)
            tracer.count("streaming.partitions_folded")
    return kernels


def _fold_one(store: PartitionStore, kernel: StreamingKernel, **selection):
    fold_partitions(store, [kernel], **selection)
    return kernel.finalize()


def streaming_monthly_growth(
    store: PartitionStore, **selection
) -> List[GrowthPoint]:
    """Figure 1 from a partitioned store (window/era via ``selection``)."""
    return _fold_one(store, MonthlyVolumeKernel(), **selection)


def streaming_type_proportions(
    store: PartitionStore, completed_only: bool = False, **selection
) -> Dict[Month, Dict]:
    """Figure 3 from a partitioned store."""
    return _fold_one(store, TypeMixKernel(completed_only), **selection)


def streaming_contract_taxonomy(
    store: PartitionStore, **selection
) -> TaxonomyTable:
    """Table 1 from a partitioned store."""
    return _fold_one(store, TaxonomyKernel(), **selection)


def streaming_contract_funnel(
    store: PartitionStore, era: Optional[str] = None
) -> ContractFunnel:
    """Figure 14's funnel; with ``era``, only that era's months open."""
    if era is None:
        return _fold_one(store, FunnelKernel())
    from ..core.eras import era_by_name

    resolved = era_by_name(era) if isinstance(era, str) else era
    era_index = ERAS.index(resolved)
    return _fold_one(store, FunnelKernel(era_index=era_index), era=resolved)


def streaming_funnel_by_era(store: PartitionStore) -> Dict[str, ContractFunnel]:
    """All three eras' funnels in one pass over the store."""
    return _fold_one(store, EraFunnelKernel())


def streaming_key_share_by_month(
    store: PartitionStore, percent: float = KEY_PERCENT, **selection
) -> List[KeySharePoint]:
    """Figure 6 from a partitioned store."""
    return _fold_one(store, KeyShareKernel(percent), **selection)


def streaming_concentration_curves(
    store: PartitionStore,
    percents: Sequence[float] = tuple(range(1, 101)),
    **selection,
) -> ConcentrationCurves:
    """Figure 5 from a partitioned store."""
    return _fold_one(store, ConcentrationKernel(percents), **selection)


def streaming_degree_growth(
    store: PartitionStore, completed_only: bool = False, **selection
) -> List[DegreeGrowthPoint]:
    """Figure 8 from a partitioned store."""
    return _fold_one(store, DegreeGrowthKernel(completed_only), **selection)
