"""Market centralisation (§4.2): Figures 5 and 6.

Figure 5 plots the share of contracts covered by the top percentile of
users (by contracts they are party to) and of threads (by linked
contracts).  Figure 6 tracks, month by month, the share of that month's
contracts involving its *key* (top-5%) members and threads — key sets are
recomputed each month.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.columns import month_from_index
from ..core.dataset import MarketDataset
from ..core.kernels import count_dispatch
from ..core.entities import Contract
from ..core.timeutils import Month, month_of
from ..stats.descriptive import concentration_curve, gini
from .monthly import completion_month

__all__ = [
    "ConcentrationCurves",
    "KeySharePoint",
    "concentration_curves",
    "key_share_by_month",
    "KEY_PERCENT",
]

#: The paper's definition of 'key': top 5% each month.
KEY_PERCENT = 5.0


def _user_involvement(contracts: Sequence[Contract]) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for contract in contracts:
        for user in contract.parties():
            counts[user] = counts.get(user, 0) + 1
    return counts


def _thread_involvement(contracts: Sequence[Contract]) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for contract in contracts:
        if contract.thread_id is not None:
            counts[contract.thread_id] = counts.get(contract.thread_id, 0) + 1
    return counts


@dataclass
class ConcentrationCurves:
    """Figure 5: top-percentile concentration for users and threads.

    Each curve maps percentile p -> share of contracts covered by the top
    p% of users/threads, for created and completed contract sets.
    """

    users_created: Dict[float, float]
    users_completed: Dict[float, float]
    threads_created: Dict[float, float]
    threads_completed: Dict[float, float]
    user_gini_created: float
    thread_gini_created: float


def _involvement_values(codes: np.ndarray) -> np.ndarray:
    """Per-actor involvement counts from a (repeated) actor-code column."""
    if not len(codes):
        return np.zeros(0, dtype=np.int64)
    return np.unique(codes, return_counts=True)[1]


def _curve_from_values(
    values: np.ndarray, percents: Sequence[float]
) -> Dict[float, float]:
    """Top-percentile shares via one descending sort + cumulative sum."""
    if not len(values):
        return {float(p): 0.0 for p in percents}
    ordered = np.sort(values.astype(np.float64))[::-1]
    cumulative = np.cumsum(ordered)
    total = cumulative[-1]
    n = len(ordered)
    out: Dict[float, float] = {}
    for p in percents:
        count = max(1, int(np.ceil(n * p / 100.0)))
        out[float(p)] = float(cumulative[count - 1] / total) if total else 0.0
    return out


def concentration_curves(
    dataset: MarketDataset,
    percents: Sequence[float] = tuple(range(1, 101)),
    fast: bool = True,
) -> ConcentrationCurves:
    """Compute Figure 5's four concentration curves (plus Ginis).

    ``fast`` derives all involvement counts from the columnar store and
    evaluates each curve with one sort + cumsum instead of a per-percent
    ``top_share`` pass.
    """
    count_dispatch(fast)
    if fast:
        store = dataset.columns()
        completed = store.is_complete
        threaded = store.thread_id >= 0
        parties = np.concatenate([store.maker_code, store.taker_code])
        parties_completed = np.concatenate(
            [store.maker_code[completed], store.taker_code[completed]]
        )
        users_created_v = _involvement_values(parties)
        threads_created_v = _involvement_values(store.thread_id[threaded])
        return ConcentrationCurves(
            users_created=_curve_from_values(users_created_v, percents),
            users_completed=_curve_from_values(
                _involvement_values(parties_completed), percents
            ),
            threads_created=_curve_from_values(threads_created_v, percents),
            threads_completed=_curve_from_values(
                _involvement_values(store.thread_id[threaded & completed]), percents
            ),
            user_gini_created=(
                gini(users_created_v.tolist()) if len(users_created_v) else 0.0
            ),
            thread_gini_created=(
                gini(threads_created_v.tolist()) if len(threads_created_v) else 0.0
            ),
        )

    created = dataset.contracts
    completed = dataset.completed()

    users_created = _user_involvement(created)
    users_completed = _user_involvement(completed)
    threads_created = _thread_involvement(created)
    threads_completed = _thread_involvement(completed)

    def curve(counts: Dict[int, int]) -> Dict[float, float]:
        values = list(counts.values())
        if not values:
            return {float(p): 0.0 for p in percents}
        return {float(p): s for p, s in concentration_curve(values, percents).items()}

    return ConcentrationCurves(
        users_created=curve(users_created),
        users_completed=curve(users_completed),
        threads_created=curve(threads_created),
        threads_completed=curve(threads_completed),
        user_gini_created=gini(list(users_created.values())) if users_created else 0.0,
        thread_gini_created=gini(list(threads_created.values())) if threads_created else 0.0,
    )


@dataclass
class KeySharePoint:
    """One month of Figure 6: shares covered by that month's key actors."""

    month: Month
    key_members_created: float
    key_members_completed: float
    key_threads_created: float
    key_threads_completed: float


def _key_share(counts: Dict[int, int], percent: float) -> float:
    """Share of involvement covered by the top ``percent`` % of actors."""
    if not counts:
        return 0.0
    values = sorted(counts.values(), reverse=True)
    k = max(1, int(round(len(values) * percent / 100.0)))
    total = sum(values)
    return sum(values[:k]) / total if total else 0.0


def _key_share_values(values: np.ndarray, percent: float) -> float:
    """Vectorized :func:`_key_share` over an involvement-count array."""
    if not len(values):
        return 0.0
    ordered = np.sort(values)[::-1]
    k = max(1, int(round(len(ordered) * percent / 100.0)))
    total = int(ordered.sum())
    return float(ordered[:k].sum() / total) if total else 0.0


def key_share_by_month(
    dataset: MarketDataset, percent: float = KEY_PERCENT, fast: bool = True
) -> List[KeySharePoint]:
    """Figure 6: per-month share of contracts made by key members/threads.

    Key members and key threads are recomputed for every month (both as
    maker and taker, per the paper).
    """
    count_dispatch(fast)
    if fast:
        store = dataset.columns()
        present = np.unique(
            np.concatenate(
                [
                    store.month_idx[store.month_idx >= 0],
                    store.settled_month_idx[store.settled_month_idx >= 0],
                ]
            )
        )
        series: List[KeySharePoint] = []
        threaded = store.thread_id >= 0
        for idx in present.tolist():
            created = store.month_idx == idx
            settled = store.settled_month_idx == idx
            members_created = _involvement_values(
                np.concatenate([store.maker_code[created], store.taker_code[created]])
            )
            members_completed = _involvement_values(
                np.concatenate([store.maker_code[settled], store.taker_code[settled]])
            )
            series.append(
                KeySharePoint(
                    month=month_from_index(idx),
                    key_members_created=_key_share_values(members_created, percent),
                    key_members_completed=_key_share_values(members_completed, percent),
                    key_threads_created=_key_share_values(
                        _involvement_values(store.thread_id[created & threaded]),
                        percent,
                    ),
                    key_threads_completed=_key_share_values(
                        _involvement_values(store.thread_id[settled & threaded]),
                        percent,
                    ),
                )
            )
        return series

    created_by_month: Dict[Month, List[Contract]] = {}
    completed_by_month: Dict[Month, List[Contract]] = {}
    for contract in dataset.contracts:
        created_by_month.setdefault(month_of(contract.created_at), []).append(contract)
        settled = completion_month(contract)
        if settled is not None:
            completed_by_month.setdefault(settled, []).append(contract)

    months = sorted(set(created_by_month) | set(completed_by_month))
    series = []
    for month in months:
        created = created_by_month.get(month, [])
        completed = completed_by_month.get(month, [])
        series.append(
            KeySharePoint(
                month=month,
                key_members_created=_key_share(_user_involvement(created), percent),
                key_members_completed=_key_share(_user_involvement(completed), percent),
                key_threads_created=_key_share(_thread_involvement(created), percent),
                key_threads_completed=_key_share(_thread_involvement(completed), percent),
            )
        )
    return series
