"""Trading-value estimation (§4.5): totals, Table 5, Figure 11.

The pipeline follows the paper step by step:

1. extract stated values from the obligation sections of *completed
   public* economic contracts (VOUCH_COPY excluded) and convert to USD at
   the transaction-time rate;
2. emulate the manual check of high-value (>$1,000) transactions: resolve
   Bitcoin references against the (simulated) blockchain; contracts whose
   chain value differs get corrected, values exceeding $10,000 with no
   chain confirmation are treated as 10x typing errors and divided down;
3. report the total/average/maximum per contract type, the naive Table 5
   sums per trading activity and payment method, the top-user value
   concentration, and the private+public extrapolation (a lower bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..blockchain.chain import Ledger
from ..blockchain.rates import RateOracle
from ..blockchain.verify import (
    HIGH_VALUE_THRESHOLD_USD,
    Verdict,
    VerificationSummary,
    verify_contract_value,
)
from ..core.dataset import MarketDataset
from ..core.entities import Contract, ContractType
from ..core.timeutils import Month, month_of
from ..stats.descriptive import top_share
from ..text.payments import PaymentExtractor
from ..text.taxonomy import UNCATEGORISED, ActivityCategorizer
from ..text.values import ContractValue, estimate_contract_value

__all__ = [
    "ValuedContract",
    "ValueReport",
    "estimate_dataset_values",
    "total_values",
    "value_tables",
    "value_evolution",
    "TYPO_CUTOFF_USD",
]

#: Stated values above this with no chain confirmation are treated as
#: 10x typing errors (§4.5 found most values over $10,000 were typos).
TYPO_CUTOFF_USD = 10_000.0


@dataclass
class ValuedContract:
    """A completed public contract with its (possibly corrected) value."""

    contract: Contract
    raw: ContractValue
    corrected_usd: float
    verdict: Optional[Verdict] = None

    @property
    def maker_usd(self) -> float:
        """Maker-side value (equal-value assumption when unstated)."""
        base = self.raw.maker_usd if self.raw.maker_usd is not None else self.raw.usd
        return base * self._correction_factor()

    @property
    def taker_usd(self) -> float:
        base = self.raw.taker_usd if self.raw.taker_usd is not None else self.raw.usd
        return base * self._correction_factor()

    def _correction_factor(self) -> float:
        if self.raw.usd <= 0:
            return 1.0
        return self.corrected_usd / self.raw.usd


def estimate_dataset_values(
    dataset: MarketDataset,
    rates: RateOracle,
    ledger: Optional[Ledger] = None,
) -> Dict[int, ValuedContract]:
    """Estimate (and manually check) values for completed public deals."""
    result: Dict[int, ValuedContract] = {}
    for contract in dataset.contracts:
        if not contract.is_complete or not contract.is_public or not contract.is_economic:
            continue
        raw = estimate_contract_value(contract, rates)
        if raw is None or raw.usd <= 0:
            continue
        corrected = raw.usd
        verdict: Optional[Verdict] = None
        if raw.usd > HIGH_VALUE_THRESHOLD_USD and ledger is not None:
            check = verify_contract_value(contract, raw.usd, ledger, rates)
            verdict = check.verdict
            corrected = check.corrected_usd
            if verdict == Verdict.UNCONFIRMED and raw.usd > TYPO_CUTOFF_USD:
                corrected = raw.usd / 10.0  # assume a typing error
        elif raw.usd > TYPO_CUTOFF_USD:
            corrected = raw.usd / 10.0
        result[contract.contract_id] = ValuedContract(
            contract=contract, raw=raw, corrected_usd=corrected, verdict=verdict
        )
    return result


@dataclass
class ValueReport:
    """§4.5's headline numbers."""

    total_usd: float
    average_usd: float
    maximum_usd: float
    n_valued: int
    per_type: Dict[ContractType, Tuple[float, float, float]]  # total, avg, max
    top10pct_user_share: float
    average_per_participant: float
    extrapolated_total_usd: float
    verification: Optional[VerificationSummary] = None


def total_values(
    dataset: MarketDataset,
    rates: RateOracle,
    ledger: Optional[Ledger] = None,
    valued: Optional[Dict[int, ValuedContract]] = None,
) -> ValueReport:
    """Compute §4.5's totals, concentration and extrapolation."""
    if valued is None:
        valued = estimate_dataset_values(dataset, rates, ledger)
    values = [v.corrected_usd for v in valued.values()]
    total = sum(values)
    n = len(values)

    per_type: Dict[ContractType, Tuple[float, float, float]] = {}
    for ctype in (
        ContractType.EXCHANGE,
        ContractType.SALE,
        ContractType.PURCHASE,
        ContractType.TRADE,
    ):
        subset = [v.corrected_usd for v in valued.values() if v.contract.ctype == ctype]
        if subset:
            per_type[ctype] = (sum(subset), sum(subset) / len(subset), max(subset))
        else:
            per_type[ctype] = (0.0, 0.0, 0.0)

    # Per-user value (as maker or taker) for the concentration statistic.
    user_value: Dict[int, float] = {}
    for v in valued.values():
        for user in v.contract.parties():
            user_value[user] = user_value.get(user, 0.0) + v.corrected_usd
    share = top_share(list(user_value.values()), 10.0) if user_value else 0.0
    participants = dataset.participant_ids()
    per_participant = total / len(participants) if participants else 0.0

    # Extrapolate to private contracts: assume private completed deals of
    # each type are at least as valuable on average as public ones.
    extrapolated = 0.0
    for ctype, (type_total, type_avg, _) in per_type.items():
        completed_all = sum(
            1 for c in dataset.contracts if c.is_complete and c.ctype == ctype
        )
        extrapolated += type_avg * completed_all

    return ValueReport(
        total_usd=total,
        average_usd=total / n if n else 0.0,
        maximum_usd=max(values) if values else 0.0,
        n_valued=n,
        per_type=per_type,
        top10pct_user_share=share,
        average_per_participant=per_participant,
        extrapolated_total_usd=extrapolated,
    )


def value_tables(
    dataset: MarketDataset,
    rates: RateOracle,
    ledger: Optional[Ledger] = None,
    categorizer: Optional[ActivityCategorizer] = None,
    extractor: Optional[PaymentExtractor] = None,
    top_n: int = 10,
    valued: Optional[Dict[int, ValuedContract]] = None,
) -> Tuple[List[Tuple[str, float, float, float]], List[Tuple[str, float, float, float]]]:
    """Table 5: top activities and payment methods by traded value.

    Returns two lists of ``(label, maker_value, taker_value, total)``
    sorted by total, the paper's naive per-category sums (a contract in
    two categories contributes to both).
    """
    categorizer = categorizer or ActivityCategorizer()
    extractor = extractor or PaymentExtractor()
    if valued is None:
        valued = estimate_dataset_values(dataset, rates, ledger)

    activity_maker: Dict[str, float] = {}
    activity_taker: Dict[str, float] = {}
    method_maker: Dict[str, float] = {}
    method_taker: Dict[str, float] = {}

    for v in valued.values():
        contract = v.contract
        categories = categorizer.categorize_sides(
            contract.maker_obligation, contract.taker_obligation
        ) - {UNCATEGORISED}
        for category in categories:
            activity_maker[category] = activity_maker.get(category, 0.0) + v.maker_usd
            activity_taker[category] = activity_taker.get(category, 0.0) + v.taker_usd
        maker_methods = extractor.extract(contract.maker_obligation)
        taker_methods = extractor.extract(contract.taker_obligation)
        for method in maker_methods:
            method_maker[method] = method_maker.get(method, 0.0) + v.maker_usd
        for method in taker_methods:
            method_taker[method] = method_taker.get(method, 0.0) + v.taker_usd

    def build(
        maker: Dict[str, float], taker: Dict[str, float], labels: Dict[str, str]
    ) -> List[Tuple[str, float, float, float]]:
        rows = []
        for key in set(maker) | set(taker):
            m = maker.get(key, 0.0)
            t = taker.get(key, 0.0)
            rows.append((labels.get(key, key), m, t, m + t))
        rows.sort(key=lambda r: -r[3])
        return rows[:top_n]

    from ..text.payments import PAYMENT_LABELS
    from ..text.taxonomy import CATEGORY_LABELS

    return (
        build(activity_maker, activity_taker, CATEGORY_LABELS),
        build(method_maker, method_taker, PAYMENT_LABELS),
    )


def value_evolution(
    dataset: MarketDataset,
    rates: RateOracle,
    ledger: Optional[Ledger] = None,
    categorizer: Optional[ActivityCategorizer] = None,
    extractor: Optional[PaymentExtractor] = None,
    top_n: int = 5,
    valued: Optional[Dict[int, ValuedContract]] = None,
) -> Dict[str, Dict[str, Dict[Month, float]]]:
    """Figure 11: monthly USD value by type, payment method and product.

    Returns ``{"by_type": ..., "by_method": ..., "by_product": ...}``,
    each mapping series label -> {month: usd}.  Products exclude currency
    exchange and payments, as in Figure 9/11.
    """
    categorizer = categorizer or ActivityCategorizer()
    extractor = extractor or PaymentExtractor()
    if valued is None:
        valued = estimate_dataset_values(dataset, rates, ledger)

    by_type: Dict[str, Dict[Month, float]] = {}
    by_method: Dict[str, Dict[Month, float]] = {}
    by_product: Dict[str, Dict[Month, float]] = {}
    method_totals: Dict[str, float] = {}
    product_totals: Dict[str, float] = {}

    from ..text.taxonomy import CATEGORY_LABELS
    from ..text.payments import PAYMENT_LABELS

    for v in valued.values():
        contract = v.contract
        month = month_of(contract.created_at)
        label = contract.ctype.name
        by_type.setdefault(label, {})
        by_type[label][month] = by_type[label].get(month, 0.0) + v.corrected_usd

        methods = extractor.extract_sides(
            contract.maker_obligation, contract.taker_obligation
        )
        for method in methods:
            name = PAYMENT_LABELS.get(method, method)
            by_method.setdefault(name, {})
            by_method[name][month] = by_method[name].get(month, 0.0) + v.corrected_usd
            method_totals[name] = method_totals.get(name, 0.0) + v.corrected_usd

        categories = categorizer.categorize_sides(
            contract.maker_obligation, contract.taker_obligation
        ) - {UNCATEGORISED, "currency_exchange", "payments"}
        for category in categories:
            name = CATEGORY_LABELS.get(category, category)
            by_product.setdefault(name, {})
            by_product[name][month] = by_product[name].get(month, 0.0) + v.corrected_usd
            product_totals[name] = product_totals.get(name, 0.0) + v.corrected_usd

    top_methods = sorted(method_totals, key=lambda m: -method_totals[m])[:top_n]
    top_products = sorted(product_totals, key=lambda p: -product_totals[p])[:top_n]
    return {
        "by_type": {k: dict(sorted(s.items())) for k, s in by_type.items()},
        "by_method": {k: dict(sorted(by_method[k].items())) for k in top_methods},
        "by_product": {k: dict(sorted(by_product[k].items())) for k in top_products},
    }
