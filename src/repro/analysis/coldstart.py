"""Cold-start analysis (§5.2): clustering and Zero-Inflated Poisson models.

The *cold start variables* are, per user and era: positive and negative
ratings received, disputed transactions, marketplace post count, contracts
initiated and accepted, and length of participation since first activity.
Completed contracts are the outcome.

Three pipelines:

* :func:`cluster_cold_starters` — two-stage k-means over users who
  accepted their first contract in STABLE: a dominant low-activity
  cluster vs a small outlier group (97.7% / 2.3%), then eight clusters
  within the outliers (Table 7).
* :func:`zip_all_users` — per-era ZIP regressions over all contract-system
  users (Table 9), with Vuong tests against plain Poisson.
* :func:`zip_subsamples` — first-time vs existing users in STABLE and
  COVID-19 (Table 10), with prior-era dispute/negative-rating covariates
  for existing users.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.dataset import MarketDataset, UserActivity
from ..core.entities import ContractStatus
from ..core.eras import COVID19, ERAS, SETUP, STABLE, Era
from ..stats.kmeans import KMeansResult, kmeans
from ..stats.poisson_glm import fit_poisson
from ..stats.preprocessing import Standardizer, sqrt_transform
from ..stats.vuong import VuongResult, vuong_test
from ..stats.zip_model import ZIPResult, fit_zip

__all__ = [
    "UserEraRecord",
    "cold_start_records",
    "EraZip",
    "zip_all_users",
    "zip_subsamples",
    "ColdStartClustering",
    "cluster_cold_starters",
    "ColdStartSummary",
    "cold_start_summary",
    "CLUSTER_VARIABLES",
]

#: Variables used for the Table 7 clustering, in column order.
CLUSTER_VARIABLES = (
    "disputes",
    "posts",
    "positive",
    "negative",
    "marketplace_posts",
    "initiated",
    "accepted",
)


def _era_bounds(era: Era) -> Tuple[_dt.datetime, _dt.datetime]:
    start = _dt.datetime.combine(era.start, _dt.time.min)
    end = _dt.datetime.combine(era.end, _dt.time.max)
    return start, end


@dataclass
class UserEraRecord:
    """One user's cold-start variables measured within one era."""

    user_id: int
    disputes: int
    positive: int
    negative: int
    posts: int
    marketplace_posts: int
    initiated: int
    accepted: int
    completed: int
    length_days: float
    first_time: bool
    prev_disputes: int = 0
    prev_negative: int = 0

    def feature(self, name: str) -> float:
        return float(getattr(self, name))


def cold_start_records(
    dataset: MarketDataset, era: Era
) -> List[UserEraRecord]:
    """Measure the cold-start variables for every contract-system user of
    an era (users party to at least one contract *created* in the era)."""
    start, end = _era_bounds(era)
    window = dataset.user_activity(start, end)
    overall = dataset.user_activity(None, end)
    before = dataset.user_activity(None, start - _dt.timedelta(seconds=1))

    records: List[UserEraRecord] = []
    for user_id, activity in sorted(window.items()):
        if activity.initiated + activity.accepted == 0:
            continue  # posted in the window but never used the contract system
        prior = before.get(user_id)
        first_time = prior is None or (prior.initiated + prior.accepted) == 0
        lifetime = overall.get(user_id, activity)
        records.append(
            UserEraRecord(
                user_id=user_id,
                disputes=activity.disputes,
                positive=activity.positive_ratings,
                negative=activity.negative_ratings,
                posts=activity.total_posts,
                marketplace_posts=activity.marketplace_posts,
                initiated=activity.initiated,
                accepted=activity.accepted,
                completed=activity.completed,
                length_days=lifetime.length_days(end),
                first_time=first_time,
                prev_disputes=prior.disputes if prior else 0,
                prev_negative=prior.negative_ratings if prior else 0,
            )
        )
    return records


# --------------------------------------------------------------------- #
# ZIP regressions (Tables 9 and 10)
# --------------------------------------------------------------------- #


@dataclass
class EraZip:
    """One fitted ZIP model plus its Vuong comparison and metadata."""

    era: str
    subsample: str  # "all", "first_time" or "existing"
    zip_result: ZIPResult
    vuong: VuongResult
    n_obs: int
    count_names: List[str]
    zero_names: List[str]


def _design(
    records: Sequence[UserEraRecord],
    include_first_time: bool,
    include_prev: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[str], List[str]]:
    """Build (X_count, Z_zero, y) with the paper's transforms.

    All skewed covariates are square-root transformed; ``length`` (days)
    and the outcome are left untouched, matching §5.2.
    """
    count_names = [
        "Disputes",
        "Positive Rating",
        "Negative Rating",
        "Marketplace Post Count",
        "No. of Initiated Contracts",
        "No. of Accepted Contracts",
    ]
    columns = [
        [r.disputes for r in records],
        [r.positive for r in records],
        [r.negative for r in records],
        [r.marketplace_posts for r in records],
        [r.initiated for r in records],
        [r.accepted for r in records],
    ]
    zero_names = ["Disputes", "Negative Rating"]
    zero_columns = [
        [r.disputes for r in records],
        [r.negative for r in records],
    ]
    if include_prev:
        count_names = count_names  # prior-era effects enter the zero model
        zero_names = zero_names + ["Disputes (prev era)", "Negative Rating (prev era)"]
        zero_columns = zero_columns + [
            [r.prev_disputes for r in records],
            [r.prev_negative for r in records],
        ]
    if include_first_time:
        count_names = count_names + ["First-Time Contract Users"]
        columns = columns + [[1.0 if r.first_time else 0.0 for r in records]]
        zero_names = zero_names + ["First-Time Contract User"]
        zero_columns = zero_columns + [[1.0 if r.first_time else 0.0 for r in records]]
    count_names = count_names + ["Length"]
    columns = columns + [[r.length_days for r in records]]
    zero_names = zero_names + ["Length"]
    zero_columns = zero_columns + [[r.length_days for r in records]]

    X = np.asarray(columns, dtype=float).T
    Z = np.asarray(zero_columns, dtype=float).T
    # sqrt-transform everything except the binary first-time flag and length
    skip_x = [i for i, name in enumerate(count_names) if name in ("First-Time Contract Users", "Length")]
    skip_z = [i for i, name in enumerate(zero_names) if "First-Time" in name or name == "Length"]
    X = sqrt_transform(X, skip_columns=skip_x)
    Z = sqrt_transform(Z, skip_columns=skip_z)
    y = np.asarray([r.completed for r in records], dtype=float)
    return X, Z, y, count_names, zero_names


def _fit_era(
    records: Sequence[UserEraRecord],
    era_name: str,
    subsample: str,
    include_first_time: bool,
    include_prev: bool = False,
) -> EraZip:
    X, Z, y, count_names, zero_names = _design(records, include_first_time, include_prev)
    zip_result = fit_zip(X, y, Z, count_names=count_names, zero_names=zero_names)
    poisson = fit_poisson(X, y)
    vuong = vuong_test(
        zip_result.loglik_terms(X, Z, y),
        poisson.loglik_terms(X, y),
        zip_result.n_params,
        len(poisson.coef),
    )
    return EraZip(
        era=era_name,
        subsample=subsample,
        zip_result=zip_result,
        vuong=vuong,
        n_obs=len(records),
        count_names=["(Intercept)"] + count_names,
        zero_names=["(Intercept)"] + zero_names,
    )


def zip_all_users(dataset: MarketDataset) -> Dict[str, EraZip]:
    """Table 9: the all-users ZIP model for each of the three eras.

    The first-time-user indicator only exists from STABLE onwards (every
    SET-UP user of the brand-new contract system is first-time).
    """
    results: Dict[str, EraZip] = {}
    for era in ERAS:
        records = cold_start_records(dataset, era)
        if len(records) < 30:
            continue
        include_first_time = era is not SETUP
        results[era.name] = _fit_era(records, era.name, "all", include_first_time)
    return results


def zip_subsamples(dataset: MarketDataset) -> Dict[Tuple[str, str], EraZip]:
    """Table 10: first-time vs existing users, STABLE and COVID-19.

    Existing-user models add the user's prior-era disputes and negative
    ratings to the zero-inflation component, as in the paper.
    """
    results: Dict[Tuple[str, str], EraZip] = {}
    for era in (STABLE, COVID19):
        records = cold_start_records(dataset, era)
        first = [r for r in records if r.first_time]
        existing = [r for r in records if not r.first_time]
        if len(first) >= 30:
            results[(era.name, "first_time")] = _fit_era(
                first, era.name, "first_time", include_first_time=False
            )
        if len(existing) >= 30:
            results[(era.name, "existing")] = _fit_era(
                existing, era.name, "existing", include_first_time=False, include_prev=True
            )
    return results


# --------------------------------------------------------------------- #
# clustering (Table 7) and the cold-start summary
# --------------------------------------------------------------------- #


def cold_starters(dataset: MarketDataset, era: Era = STABLE) -> List[int]:
    """Users who accepted their *first* contract during ``era``."""
    first_accept: Dict[int, _dt.datetime] = {}
    for contract in dataset.contracts:
        taker = contract.taker_id
        when = contract.created_at
        if taker not in first_accept or when < first_accept[taker]:
            first_accept[taker] = when
    return sorted(user for user, when in first_accept.items() if era.contains(when))


@dataclass
class ColdStartClustering:
    """Two-stage clustering output (§5.2 and Table 7)."""

    users: List[int]
    features: np.ndarray                  # raw (unstandardised) features
    stage1: KMeansResult
    major_share: float                    # share of users in the big cluster
    outlier_users: List[int]
    stage2: Optional[KMeansResult]
    outlier_medians: List[Dict[str, float]]  # per stage-2 cluster
    outlier_sizes: List[int]

    @property
    def outlier_share(self) -> float:
        return 1.0 - self.major_share


def _feature_matrix(
    dataset: MarketDataset, users: Sequence[int], era: Era
) -> np.ndarray:
    start, end = _era_bounds(era)
    window = dataset.user_activity(start, end)
    rows = []
    for user in users:
        activity = window.get(user, UserActivity(user_id=user))
        rows.append(
            [
                activity.disputes,
                activity.total_posts,
                activity.positive_ratings,
                activity.negative_ratings,
                activity.marketplace_posts,
                activity.initiated,
                activity.accepted,
            ]
        )
    return np.asarray(rows, dtype=float)


def cluster_cold_starters(
    dataset: MarketDataset,
    era: Era = STABLE,
    outlier_k: int = 8,
    seed: int = 0,
) -> ColdStartClustering:
    """Run the paper's two-stage k-means over STABLE cold starters."""
    users = cold_starters(dataset, era)
    if len(users) < max(outlier_k + 2, 10):
        raise ValueError("not enough cold starters to cluster")
    features = _feature_matrix(dataset, users, era)
    standardized = Standardizer.fit(features).transform(features)

    stage1 = kmeans(standardized, 2, seed=seed)
    sizes = stage1.cluster_sizes()
    major = int(np.argmax(sizes))
    major_share = float(sizes[major] / sizes.sum())
    outlier_mask = stage1.labels != major
    outlier_users = [u for u, keep in zip(users, outlier_mask) if keep]
    outlier_features = features[outlier_mask]

    stage2: Optional[KMeansResult] = None
    medians: List[Dict[str, float]] = []
    cluster_sizes: List[int] = []
    if len(outlier_users) >= outlier_k:
        outlier_std = Standardizer.fit(outlier_features).transform(outlier_features)
        stage2 = kmeans(outlier_std, outlier_k, seed=seed)
        for cluster in range(outlier_k):
            members = outlier_features[stage2.labels == cluster]
            cluster_sizes.append(int(len(members)))
            if len(members):
                med = np.median(members, axis=0)
            else:
                med = np.zeros(len(CLUSTER_VARIABLES))
            medians.append(dict(zip(CLUSTER_VARIABLES, (float(x) for x in med))))

    return ColdStartClustering(
        users=users,
        features=features,
        stage1=stage1,
        major_share=major_share,
        outlier_users=outlier_users,
        stage2=stage2,
        outlier_medians=medians,
        outlier_sizes=cluster_sizes,
    )


@dataclass
class ColdStartSummary:
    """§5.2's narrative numbers around the clustering."""

    n_cold_starters: int
    n_outliers: int
    major_share: float
    median_lifespan_all_days: float
    median_lifespan_outliers_days: float
    continue_into_covid_all: float      # share accepting contracts in E3
    continue_into_covid_outliers: float
    median_reputation_all: float
    median_reputation_outliers: float
    median_reputation_setup_starters: float


def cold_start_summary(
    dataset: MarketDataset,
    clustering: Optional[ColdStartClustering] = None,
    seed: int = 0,
) -> ColdStartSummary:
    """Lifespan, continuation and reputation comparisons for cold starters."""
    if clustering is None:
        clustering = cluster_cold_starters(dataset, seed=seed)

    all_activity = dataset.user_activity()

    def lifespan(user: int) -> float:
        activity = all_activity.get(user)
        return activity.lifespan_days() if activity else 0.0

    def reputation(user: int) -> float:
        activity = all_activity.get(user)
        return float(activity.reputation) if activity else 0.0

    covid_start, covid_end = _era_bounds(COVID19)
    covid_takers = {
        c.taker_id
        for c in dataset.contracts
        if covid_start <= c.created_at <= covid_end
    }

    def continuation(users: Sequence[int]) -> float:
        if not users:
            return 0.0
        return sum(1 for u in users if u in covid_takers) / len(users)

    setup_starters = cold_starters(dataset, SETUP)

    def median_of(values: Sequence[float]) -> float:
        return float(np.median(values)) if len(values) else 0.0

    return ColdStartSummary(
        n_cold_starters=len(clustering.users),
        n_outliers=len(clustering.outlier_users),
        major_share=clustering.major_share,
        median_lifespan_all_days=median_of([lifespan(u) for u in clustering.users]),
        median_lifespan_outliers_days=median_of(
            [lifespan(u) for u in clustering.outlier_users]
        ),
        continue_into_covid_all=continuation(clustering.users),
        continue_into_covid_outliers=continuation(clustering.outlier_users),
        median_reputation_all=median_of([reputation(u) for u in clustering.users]),
        median_reputation_outliers=median_of(
            [reputation(u) for u in clustering.outlier_users]
        ),
        median_reputation_setup_starters=median_of(
            [reputation(u) for u in setup_starters]
        ),
    )
