"""Dispute analysis.

The paper tracks disputes as the market's conflict signal: dispute rates
sit around 1% of contracts, peak at 2–3% over the last six months of
SET-UP (Tuckman's *storming*), and halve at the start of STABLE (§5.1,
§6).  §4.5 additionally looks at who disputes: most users are involved in
a single dispute, with one outlier on 21.

This module computes the monthly dispute-rate series, per-era rates, the
per-user dispute distribution, and the goods involved in disputed deals.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dataset import MarketDataset
from ..core.entities import Contract, ContractStatus
from ..core.eras import ERAS, Era
from ..core.timeutils import Month, month_of
from ..text.taxonomy import UNCATEGORISED, ActivityCategorizer

__all__ = [
    "DisputeSummary",
    "dispute_rate_by_month",
    "dispute_rate_by_era",
    "disputes_per_user",
    "disputed_goods",
    "dispute_summary",
]


def dispute_rate_by_month(dataset: MarketDataset) -> Dict[Month, float]:
    """Share of contracts created each month that ended disputed."""
    totals: Dict[Month, int] = {}
    disputed: Dict[Month, int] = {}
    for contract in dataset.contracts:
        month = month_of(contract.created_at)
        totals[month] = totals.get(month, 0) + 1
        if contract.status == ContractStatus.DISPUTED:
            disputed[month] = disputed.get(month, 0) + 1
    return {
        month: disputed.get(month, 0) / totals[month] for month in sorted(totals)
    }


def dispute_rate_by_era(dataset: MarketDataset) -> Dict[str, float]:
    """Dispute rate per era (created contracts)."""
    rates: Dict[str, float] = {}
    for era in ERAS:
        contracts = dataset.in_era(era)
        if not contracts:
            rates[era.name] = 0.0
            continue
        count = sum(1 for c in contracts if c.status == ContractStatus.DISPUTED)
        rates[era.name] = count / len(contracts)
    return rates


def disputes_per_user(dataset: MarketDataset) -> Dict[int, int]:
    """Number of disputed contracts each user was party to (>=1 only)."""
    counts: Dict[int, int] = {}
    for contract in dataset.contracts:
        if contract.status != ContractStatus.DISPUTED:
            continue
        for user in contract.parties():
            counts[user] = counts.get(user, 0) + 1
    return counts


def disputed_goods(
    dataset: MarketDataset,
    categorizer: Optional[ActivityCategorizer] = None,
) -> List[Tuple[str, int]]:
    """Trading-activity categories of disputed contracts, most common
    first.  Disputed contracts are always public, so their obligations are
    observable — the paper finds most disputed deals exchange Bitcoin."""
    categorizer = categorizer or ActivityCategorizer()
    tally: Counter = Counter()
    for contract in dataset.contracts:
        if contract.status != ContractStatus.DISPUTED:
            continue
        categories = categorizer.categorize_sides(
            contract.maker_obligation, contract.taker_obligation
        )
        tally.update(categories - {UNCATEGORISED})
    return tally.most_common()


@dataclass
class DisputeSummary:
    """Headline dispute statistics."""

    total_disputes: int
    overall_rate: float
    rate_by_era: Dict[str, float]
    peak_month: Optional[Month]
    peak_rate: float
    max_disputes_one_user: int
    users_with_one_dispute_share: float


def dispute_summary(dataset: MarketDataset) -> DisputeSummary:
    """Compute the paper's headline dispute statistics in one pass."""
    monthly = dispute_rate_by_month(dataset)
    per_user = disputes_per_user(dataset)
    total = sum(
        1 for c in dataset.contracts if c.status == ContractStatus.DISPUTED
    )
    peak_month = max(monthly, key=lambda m: monthly[m]) if monthly else None
    singles = sum(1 for count in per_user.values() if count == 1)
    return DisputeSummary(
        total_disputes=total,
        overall_rate=total / len(dataset.contracts) if len(dataset) else 0.0,
        rate_by_era=dispute_rate_by_era(dataset),
        peak_month=peak_month,
        peak_rate=monthly.get(peak_month, 0.0) if peak_month else 0.0,
        max_disputes_one_user=max(per_user.values()) if per_user else 0,
        users_with_one_dispute_share=(
            singles / len(per_user) if per_user else 0.0
        ),
    )
