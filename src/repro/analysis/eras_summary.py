"""Per-era summaries and the stimulus-vs-transformation test (§6).

The paper's central COVID-19 claim is that the pandemic *stimulated* the
market without *transforming* it: volumes rose across the board while the
composition of activity (contract types, products, users) stayed put.
This module makes that claim testable:

* :func:`era_profile` — one row of headline statistics per era;
* :func:`composition_distance` — total-variation distance between two
  eras' contract-type (or product-category) distributions;
* :func:`stimulus_test` — the formal check: volume ratio across the
  STABLE -> COVID-19 boundary vs composition drift, plus a chi-square
  test of the type mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.stats import chi2_contingency

from ..core.dataset import MarketDataset
from ..core.entities import Contract, ContractType
from ..core.eras import COVID19, ERAS, STABLE, Era
from ..text.taxonomy import UNCATEGORISED, ActivityCategorizer

__all__ = [
    "EraProfile",
    "era_profile",
    "era_profiles",
    "composition_distance",
    "StimulusResult",
    "stimulus_test",
]


@dataclass
class EraProfile:
    """Headline statistics for one era."""

    era: str
    short: str
    contracts: int
    contracts_per_month: float
    completed: int
    completion_rate: float
    public_share: float
    members: int
    new_members: int
    type_shares: Dict[ContractType, float]


def era_profile(dataset: MarketDataset, era: Era,
                seen_before: Optional[set] = None) -> EraProfile:
    """Compute one era's profile; ``seen_before`` marks prior members."""
    contracts = dataset.in_era(era)
    members = {u for c in contracts for u in c.parties()}
    prior = seen_before or set()
    completed = sum(1 for c in contracts if c.is_complete)
    public = sum(1 for c in contracts if c.is_public)
    counts = {t: 0 for t in ContractType}
    for contract in contracts:
        counts[contract.ctype] += 1
    total = max(1, len(contracts))
    return EraProfile(
        era=era.name,
        short=era.short,
        contracts=len(contracts),
        contracts_per_month=len(contracts) / (era.days / 30.44),
        completed=completed,
        completion_rate=completed / total,
        public_share=public / total,
        members=len(members),
        new_members=len(members - prior),
        type_shares={t: counts[t] / total for t in ContractType},
    )


def era_profiles(dataset: MarketDataset) -> List[EraProfile]:
    """Profiles for all three eras, with new-member accounting."""
    seen: set = set()
    profiles = []
    for era in ERAS:
        profile = era_profile(dataset, era, seen_before=seen)
        profiles.append(profile)
        seen |= {u for c in dataset.in_era(era) for u in c.parties()}
    return profiles


def composition_distance(
    dataset: MarketDataset,
    era_a: Era,
    era_b: Era,
    by: str = "type",
    categorizer: Optional[ActivityCategorizer] = None,
) -> float:
    """Total-variation distance between two eras' activity composition.

    ``by`` is "type" (contract types) or "category" (trading activities of
    completed public contracts).  0 = identical mix, 1 = disjoint.
    """
    def distribution(era: Era) -> Dict[str, float]:
        contracts = dataset.in_era(era)
        if by == "type":
            counts: Dict[str, float] = {}
            for contract in contracts:
                counts[contract.ctype.name] = counts.get(contract.ctype.name, 0) + 1
        elif by == "category":
            cat = categorizer or ActivityCategorizer()
            counts = {}
            for contract in contracts:
                if not (contract.is_complete and contract.is_public):
                    continue
                for key in cat.categorize_sides(
                    contract.maker_obligation, contract.taker_obligation
                ) - {UNCATEGORISED}:
                    counts[key] = counts.get(key, 0) + 1
        else:
            raise ValueError("by must be 'type' or 'category'")
        total = sum(counts.values())
        return {k: v / total for k, v in counts.items()} if total else {}

    dist_a = distribution(era_a)
    dist_b = distribution(era_b)
    keys = set(dist_a) | set(dist_b)
    return 0.5 * sum(abs(dist_a.get(k, 0.0) - dist_b.get(k, 0.0)) for k in keys)


@dataclass
class StimulusResult:
    """Outcome of the stimulus-vs-transformation check."""

    volume_ratio: float          # COVID monthly rate / late-STABLE monthly rate
    type_drift: float            # total-variation distance of type mix
    category_drift: float        # total-variation distance of product mix
    chi2_statistic: float
    chi2_p_value: float

    @property
    def is_stimulus(self) -> bool:
        """Volumes up while the mix barely moves.

        The COVID-19 surge is a short-lived peak (April 2020) followed by
        a drop, so the *era-average* volume ratio is modest even when the
        peak is dramatic; 1.05 on the era average corresponds to a much
        larger peak-month jump.
        """
        return self.volume_ratio > 1.05 and self.type_drift < 0.1

    @property
    def is_transformation(self) -> bool:
        return self.type_drift >= 0.2


def stimulus_test(
    dataset: MarketDataset,
    reference_months: int = 3,
) -> StimulusResult:
    """The paper's §6 COVID-19 conclusion as a computation.

    Compares the COVID-19 era against the last ``reference_months`` of
    STABLE: the monthly contract rate should jump (stimulus) while the
    contract-type mix stays put (no transformation).  A chi-square test on
    the type contingency table quantifies mix stability (note: with large
    n even tiny drifts are 'significant'; the drift magnitudes are the
    interpretable numbers).
    """
    import datetime as dt

    from ..core.eras import Era

    late_stable_start = STABLE.end - dt.timedelta(days=int(30.44 * reference_months))
    late_stable = Era("late-STABLE", "E2b", late_stable_start, STABLE.end)

    stable_contracts = dataset.in_era(late_stable)
    covid_contracts = dataset.in_era(COVID19)
    stable_rate = len(stable_contracts) / (late_stable.days / 30.44)
    covid_rate = len(covid_contracts) / (COVID19.days / 30.44)

    type_drift = composition_distance(dataset, late_stable, COVID19, by="type")
    category_drift = composition_distance(dataset, late_stable, COVID19, by="category")

    table = []
    for contracts in (stable_contracts, covid_contracts):
        row = [sum(1 for c in contracts if c.ctype == t) for t in ContractType]
        table.append(row)
    matrix = np.asarray(table, dtype=float)
    keep = matrix.sum(axis=0) > 0
    matrix = matrix[:, keep]
    if matrix.shape[1] >= 2 and matrix.sum() > 0:
        chi2, p_value = chi2_contingency(matrix)[:2]
    else:
        chi2, p_value = 0.0, 1.0

    return StimulusResult(
        volume_ratio=covid_rate / stable_rate if stable_rate else float("inf"),
        type_drift=type_drift,
        category_drift=category_drift,
        chi2_statistic=float(chi2),
        chi2_p_value=float(p_value),
    )
