"""Trading-activity analysis (§4.3): Table 3 and Figure 9.

The pipeline mirrors the paper: take the obligation sections of *public*
contracts, normalise, categorise with the regex taxonomy, then count
contracts and unique users per category, split by maker and taker side.
A contract can land in several categories; for activities where both
sides are one category (currency exchange), the "both sides" column
counts the contract once, so the total is smaller than makers + takers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.dataset import MarketDataset
from ..core.entities import Contract
from ..core.timeutils import Month, month_of
from ..text.taxonomy import (
    CATEGORIES,
    CATEGORY_LABELS,
    UNCATEGORISED,
    ActivityCategorizer,
)

__all__ = [
    "ActivityRow",
    "ActivityTable",
    "top_trading_activities",
    "product_evolution",
    "EVOLUTION_EXCLUDED",
]

#: Figure 9 excludes these (examined separately in §4.4).
EVOLUTION_EXCLUDED = ("currency_exchange", "payments")


@dataclass
class ActivityRow:
    """One Table 3 row: contract and unique-user counts for a category."""

    category: str
    label: str
    maker_contracts: int = 0
    maker_users: Set[int] = field(default_factory=set)
    taker_contracts: int = 0
    taker_users: Set[int] = field(default_factory=set)
    both_contracts: int = 0
    both_users: Set[int] = field(default_factory=set)

    def as_tuple(self) -> Tuple[str, int, int, int, int, int, int]:
        """(label, makers, maker_users, takers, taker_users, both, both_users)."""
        return (
            self.label,
            self.maker_contracts,
            len(self.maker_users),
            self.taker_contracts,
            len(self.taker_users),
            self.both_contracts,
            len(self.both_users),
        )


@dataclass
class ActivityTable:
    """Table 3: per-category rows plus the all-activities summary row."""

    rows: Dict[str, ActivityRow]
    all_row: ActivityRow
    n_contracts: int  # contracts analysed (completed public)

    def top(self, count: int = 15, include_uncategorised: bool = False) -> List[ActivityRow]:
        """Rows sorted by both-sides contract count, descending."""
        rows = [
            row
            for key, row in self.rows.items()
            if include_uncategorised or key != UNCATEGORISED
        ]
        rows.sort(key=lambda r: -r.both_contracts)
        return rows[:count]

    def share(self, category: str) -> float:
        """Share of analysed contracts touching ``category``."""
        row = self.rows.get(category)
        if row is None or not self.all_row.both_contracts:
            return 0.0
        return row.both_contracts / self.all_row.both_contracts


def _contracts_for_analysis(
    dataset: MarketDataset, contracts: Optional[Sequence[Contract]]
) -> List[Contract]:
    if contracts is not None:
        return list(contracts)
    return dataset.completed_public()


def top_trading_activities(
    dataset: MarketDataset,
    categorizer: Optional[ActivityCategorizer] = None,
    contracts: Optional[Sequence[Contract]] = None,
) -> ActivityTable:
    """Categorise completed public contracts into activity buckets.

    ``contracts`` overrides the default completed-public subset (useful
    for per-era tables).
    """
    categorizer = categorizer or ActivityCategorizer()
    subset = _contracts_for_analysis(dataset, contracts)

    rows: Dict[str, ActivityRow] = {
        key: ActivityRow(key, CATEGORY_LABELS.get(key, key))
        for key in tuple(CATEGORIES) + (UNCATEGORISED,)
    }
    all_row = ActivityRow("all", "All Trading Activities")

    for contract in subset:
        maker_cats = categorizer.categorize(contract.maker_obligation)
        taker_cats = categorizer.categorize(contract.taker_obligation)
        both_cats = maker_cats | taker_cats
        for category in maker_cats:
            row = rows[category]
            row.maker_contracts += 1
            row.maker_users.add(contract.maker_id)
        for category in taker_cats:
            row = rows[category]
            row.taker_contracts += 1
            row.taker_users.add(contract.taker_id)
        for category in both_cats:
            row = rows[category]
            row.both_contracts += 1
            row.both_users.add(contract.maker_id)
            row.both_users.add(contract.taker_id)
        if both_cats - {UNCATEGORISED}:
            all_row.both_contracts += 1
            all_row.both_users.add(contract.maker_id)
            all_row.both_users.add(contract.taker_id)
        if maker_cats - {UNCATEGORISED}:
            all_row.maker_contracts += 1
            all_row.maker_users.add(contract.maker_id)
        if taker_cats - {UNCATEGORISED}:
            all_row.taker_contracts += 1
            all_row.taker_users.add(contract.taker_id)

    return ActivityTable(rows=rows, all_row=all_row, n_contracts=len(subset))


def product_evolution(
    dataset: MarketDataset,
    categorizer: Optional[ActivityCategorizer] = None,
    top_n: int = 5,
    exclude: Sequence[str] = EVOLUTION_EXCLUDED,
) -> Dict[str, Dict[Month, int]]:
    """Figure 9: monthly completed-public contracts for the top products.

    Currency exchange and payments are excluded (per the paper); the top
    ``top_n`` remaining categories by total volume are tracked.
    """
    categorizer = categorizer or ActivityCategorizer()
    subset = dataset.completed_public()

    monthly: Dict[str, Dict[Month, int]] = {}
    totals: Dict[str, int] = {}
    excluded = set(exclude) | {UNCATEGORISED}
    for contract in subset:
        categories = categorizer.categorize_sides(
            contract.maker_obligation, contract.taker_obligation
        )
        month = month_of(contract.created_at)
        for category in categories - excluded:
            monthly.setdefault(category, {})
            monthly[category][month] = monthly[category].get(month, 0) + 1
            totals[category] = totals.get(category, 0) + 1

    winners = sorted(totals, key=lambda c: -totals[c])[:top_n]
    return {category: dict(sorted(monthly[category].items())) for category in winners}
