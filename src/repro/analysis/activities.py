"""Trading-activity analysis (§4.3): Table 3 and Figure 9.

The pipeline mirrors the paper: take the obligation sections of *public*
contracts, normalise, categorise with the regex taxonomy, then count
contracts and unique users per category, split by maker and taker side.
A contract can land in several categories; for activities where both
sides are one category (currency exchange), the "both sides" column
counts the contract once, so the total is smaller than makers + takers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.dataset import MarketDataset
from ..core.kernels import count_dispatch
from ..core.entities import Contract
from ..core.timeutils import Month, month_of
from ..text.taxonomy import (
    CATEGORIES,
    CATEGORY_LABELS,
    UNCATEGORISED,
    ActivityCategorizer,
)
from .monthly import _month_counts

__all__ = [
    "ActivityRow",
    "ActivityTable",
    "top_trading_activities",
    "product_evolution",
    "EVOLUTION_EXCLUDED",
]

#: Figure 9 excludes these (examined separately in §4.4).
EVOLUTION_EXCLUDED = ("currency_exchange", "payments")


@dataclass
class ActivityRow:
    """One Table 3 row: contract and unique-user counts for a category."""

    category: str
    label: str
    maker_contracts: int = 0
    maker_users: Set[int] = field(default_factory=set)
    taker_contracts: int = 0
    taker_users: Set[int] = field(default_factory=set)
    both_contracts: int = 0
    both_users: Set[int] = field(default_factory=set)

    def as_tuple(self) -> Tuple[str, int, int, int, int, int, int]:
        """(label, makers, maker_users, takers, taker_users, both, both_users)."""
        return (
            self.label,
            self.maker_contracts,
            len(self.maker_users),
            self.taker_contracts,
            len(self.taker_users),
            self.both_contracts,
            len(self.both_users),
        )


@dataclass
class ActivityTable:
    """Table 3: per-category rows plus the all-activities summary row."""

    rows: Dict[str, ActivityRow]
    all_row: ActivityRow
    n_contracts: int  # contracts analysed (completed public)

    def top(self, count: int = 15, include_uncategorised: bool = False) -> List[ActivityRow]:
        """Rows sorted by both-sides contract count, descending."""
        rows = [
            row
            for key, row in self.rows.items()
            if include_uncategorised or key != UNCATEGORISED
        ]
        rows.sort(key=lambda r: -r.both_contracts)
        return rows[:count]

    def share(self, category: str) -> float:
        """Share of analysed contracts touching ``category``."""
        row = self.rows.get(category)
        if row is None or not self.all_row.both_contracts:
            return 0.0
        return row.both_contracts / self.all_row.both_contracts


def _contracts_for_analysis(
    dataset: MarketDataset, contracts: Optional[Sequence[Contract]]
) -> List[Contract]:
    if contracts is not None:
        return list(contracts)
    return dataset.completed_public()


#: Bit index reserved for the uncategorised marker in activity bitmasks.
_UNCAT_BIT = len(CATEGORIES)
#: Mask selecting only the concrete (non-uncategorised) category bits.
_CAT_BITS = np.uint32((1 << _UNCAT_BIT) - 1)
_BIT_OF = {key: i for i, key in enumerate(CATEGORIES)}
_BIT_OF[UNCATEGORISED] = _UNCAT_BIT


def _mask_of(categories: Set[str]) -> int:
    mask = 0
    for key in categories:
        mask |= 1 << _BIT_OF[key]
    return mask


def _activity_masks(
    dataset: MarketDataset,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Category bitmasks for every completed public contract, memoized.

    Returns ``(rows, maker, taker, sides)``: the store row indexes of the
    completed-public subset plus one uint32 bitmask per row for the maker
    obligation, the taker obligation, and the combined (both-sides) text.
    The regex pass is the irreducibly per-text part of §4.3, so it runs
    once per dataset and is cached on ``ColumnStore.derived`` — Table 3,
    Figure 9, and repeat calls all reuse it.
    """
    store = dataset.columns()
    cached = store.derived.get("activity_masks")
    if cached is not None:
        return cached
    categorizer = ActivityCategorizer()
    rows = np.flatnonzero(store.completed_public_mask())
    maker = np.zeros(len(rows), dtype=np.uint32)
    taker = np.zeros(len(rows), dtype=np.uint32)
    sides = np.zeros(len(rows), dtype=np.uint32)
    contracts = dataset.contracts
    for i, row in enumerate(rows.tolist()):
        contract = contracts[row]
        maker[i] = _mask_of(categorizer.categorize(contract.maker_obligation))
        taker[i] = _mask_of(categorizer.categorize(contract.taker_obligation))
        sides[i] = _mask_of(
            categorizer.categorize_sides(
                contract.maker_obligation, contract.taker_obligation
            )
        )
    store.derived["activity_masks"] = (rows, maker, taker, sides)
    return rows, maker, taker, sides


def _id_set(ids: np.ndarray) -> Set[int]:
    return set(ids.tolist())


def top_trading_activities(
    dataset: MarketDataset,
    categorizer: Optional[ActivityCategorizer] = None,
    contracts: Optional[Sequence[Contract]] = None,
    fast: bool = True,
) -> ActivityTable:
    """Categorise completed public contracts into activity buckets.

    ``contracts`` overrides the default completed-public subset (useful
    for per-era tables).  ``fast`` applies to whole-dataset calls with the
    default categoriser: the per-text regex pass is memoized on the
    columnar store and all counting happens on bitmask arrays.
    """
    count_dispatch(fast and categorizer is None and contracts is None)
    if fast and categorizer is None and contracts is None:
        store = dataset.columns()
        rows, maker_m, taker_m, _ = _activity_masks(dataset)
        maker_ids = store.maker_id[rows]
        taker_ids = store.taker_id[rows]
        both_m = maker_m | taker_m
        table_rows: Dict[str, ActivityRow] = {}
        for key in tuple(CATEGORIES) + (UNCATEGORISED,):
            bit = np.uint32(1 << _BIT_OF[key])
            m_sel = (maker_m & bit) != 0
            t_sel = (taker_m & bit) != 0
            b_sel = (both_m & bit) != 0
            table_rows[key] = ActivityRow(
                key,
                CATEGORY_LABELS.get(key, key),
                maker_contracts=int(m_sel.sum()),
                maker_users=_id_set(np.unique(maker_ids[m_sel])),
                taker_contracts=int(t_sel.sum()),
                taker_users=_id_set(np.unique(taker_ids[t_sel])),
                both_contracts=int(b_sel.sum()),
                both_users=_id_set(
                    np.unique(np.concatenate([maker_ids[b_sel], taker_ids[b_sel]]))
                ),
            )
        m_any = (maker_m & _CAT_BITS) != 0
        t_any = (taker_m & _CAT_BITS) != 0
        b_any = (both_m & _CAT_BITS) != 0
        all_row = ActivityRow(
            "all",
            "All Trading Activities",
            maker_contracts=int(m_any.sum()),
            maker_users=_id_set(np.unique(maker_ids[m_any])),
            taker_contracts=int(t_any.sum()),
            taker_users=_id_set(np.unique(taker_ids[t_any])),
            both_contracts=int(b_any.sum()),
            both_users=_id_set(
                np.unique(np.concatenate([maker_ids[b_any], taker_ids[b_any]]))
            ),
        )
        return ActivityTable(rows=table_rows, all_row=all_row, n_contracts=len(rows))

    categorizer = categorizer or ActivityCategorizer()
    subset = _contracts_for_analysis(dataset, contracts)

    rows: Dict[str, ActivityRow] = {
        key: ActivityRow(key, CATEGORY_LABELS.get(key, key))
        for key in tuple(CATEGORIES) + (UNCATEGORISED,)
    }
    all_row = ActivityRow("all", "All Trading Activities")

    for contract in subset:
        maker_cats = categorizer.categorize(contract.maker_obligation)
        taker_cats = categorizer.categorize(contract.taker_obligation)
        both_cats = maker_cats | taker_cats
        for category in maker_cats:
            row = rows[category]
            row.maker_contracts += 1
            row.maker_users.add(contract.maker_id)
        for category in taker_cats:
            row = rows[category]
            row.taker_contracts += 1
            row.taker_users.add(contract.taker_id)
        for category in both_cats:
            row = rows[category]
            row.both_contracts += 1
            row.both_users.add(contract.maker_id)
            row.both_users.add(contract.taker_id)
        if both_cats - {UNCATEGORISED}:
            all_row.both_contracts += 1
            all_row.both_users.add(contract.maker_id)
            all_row.both_users.add(contract.taker_id)
        if maker_cats - {UNCATEGORISED}:
            all_row.maker_contracts += 1
            all_row.maker_users.add(contract.maker_id)
        if taker_cats - {UNCATEGORISED}:
            all_row.taker_contracts += 1
            all_row.taker_users.add(contract.taker_id)

    return ActivityTable(rows=rows, all_row=all_row, n_contracts=len(subset))


def product_evolution(
    dataset: MarketDataset,
    categorizer: Optional[ActivityCategorizer] = None,
    top_n: int = 5,
    exclude: Sequence[str] = EVOLUTION_EXCLUDED,
    fast: bool = True,
) -> Dict[str, Dict[Month, int]]:
    """Figure 9: monthly completed-public contracts for the top products.

    Currency exchange and payments are excluded (per the paper); the top
    ``top_n`` remaining categories by total volume are tracked.  ``fast``
    (default-categoriser calls) reuses the memoized both-sides bitmasks
    and bincounts the per-category monthly series.
    """
    count_dispatch(fast and categorizer is None)
    if fast and categorizer is None:
        store = dataset.columns()
        rows, _, _, sides_m = _activity_masks(dataset)
        months = store.month_idx[rows]
        excluded = set(exclude) | {UNCATEGORISED}
        monthly: Dict[str, Dict[Month, int]] = {}
        totals: Dict[str, int] = {}
        for key in CATEGORIES:
            if key in excluded:
                continue
            sel = (sides_m & np.uint32(1 << _BIT_OF[key])) != 0
            total = int(sel.sum())
            if not total:
                continue
            totals[key] = total
            monthly[key] = _month_counts(months[sel])
        winners = sorted(totals, key=lambda c: (-totals[c], c))[:top_n]
        return {category: monthly[category] for category in winners}

    categorizer = categorizer or ActivityCategorizer()
    subset = dataset.completed_public()

    monthly = {}
    totals = {}
    excluded = set(exclude) | {UNCATEGORISED}
    for contract in subset:
        categories = categorizer.categorize_sides(
            contract.maker_obligation, contract.taker_obligation
        )
        month = month_of(contract.created_at)
        for category in categories - excluded:
            monthly.setdefault(category, {})
            monthly[category][month] = monthly[category].get(month, 0) + 1
            totals[category] = totals.get(category, 0) + 1

    # Ties broken by category key so the pick is hash-seed independent.
    winners = sorted(totals, key=lambda c: (-totals[c], c))[:top_n]
    return {category: dict(sorted(monthly[category].items())) for category in winners}
