"""Reputation as trust infrastructure (§6's discussion, quantified).

The paper argues the semi-public transaction record acts as a trust
infrastructure that "particularly benefit[s] the concentration of the
market over time around a core of power-users".  This module tracks that
process directly on the reputation record:

* cumulative reputation concentration (Gini / top-share) month by month;
* cohort trajectories — the median reputation of users who first became
  active in each era, followed through time (do SET-UP incumbents stay
  ahead?);
* the reputation premium — the mean counterparty reputation on completed
  versus failed deals, per era.  Note this is a *diagnostic*, not a
  causal claim: hub takers hold enormous reputation and dominate both
  completed and failed volume, so the sign depends on the failure base
  rates of the contract types they absorb.
"""

from __future__ import annotations

import datetime as _dt
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.dataset import MarketDataset
from ..core.entities import ContractStatus
from ..core.eras import ERAS, Era, era_of
from ..core.timeutils import Month, month_of
from ..stats.descriptive import gini, top_share

__all__ = [
    "reputation_concentration_by_month",
    "cohort_reputation_trajectories",
    "ReputationPremium",
    "reputation_premium_by_era",
]


def _cumulative_scores(dataset: MarketDataset) -> Dict[Month, Dict[int, int]]:
    """Reputation per user at the end of each month (cumulative)."""
    by_month: Dict[Month, Dict[int, int]] = {}
    running: Dict[int, int] = defaultdict(int)
    ratings = sorted(dataset.ratings, key=lambda r: r.created_at)
    if not ratings:
        return {}
    months = sorted({month_of(r.created_at) for r in ratings})
    index = 0
    for month in months:
        end = _dt.datetime.combine(month.last_day(), _dt.time.max)
        while index < len(ratings) and ratings[index].created_at <= end:
            running[ratings[index].ratee_id] += ratings[index].score
            index += 1
        by_month[month] = dict(running)
    return by_month


def reputation_concentration_by_month(
    dataset: MarketDataset,
) -> Dict[Month, Tuple[float, float]]:
    """Per month: (Gini, top-5% share) of cumulative positive reputation.

    Rising concentration is the paper's 'trust accrues to the core'
    claim made measurable.
    """
    result: Dict[Month, Tuple[float, float]] = {}
    for month, scores in _cumulative_scores(dataset).items():
        positives = [score for score in scores.values() if score > 0]
        if len(positives) < 10:
            continue
        result[month] = (gini(positives), top_share(positives, 5.0))
    return dict(sorted(result.items()))


def cohort_reputation_trajectories(
    dataset: MarketDataset,
) -> Dict[str, Dict[Month, float]]:
    """Median cumulative reputation per first-activity cohort over time.

    Users are assigned to the era in which they were first party to a
    contract; each cohort's median reputation is then tracked monthly.
    """
    first_active: Dict[int, _dt.datetime] = {}
    for contract in dataset.contracts:
        for user in contract.parties():
            when = contract.created_at
            if user not in first_active or when < first_active[user]:
                first_active[user] = when

    cohorts: Dict[str, List[int]] = {era.name: [] for era in ERAS}
    for user, when in first_active.items():
        era = era_of(when)
        if era is not None:
            cohorts[era.name].append(user)

    trajectories: Dict[str, Dict[Month, float]] = {era.name: {} for era in ERAS}
    for month, scores in _cumulative_scores(dataset).items():
        for era in ERAS:
            members = cohorts[era.name]
            if not members or month < month_of(era.start):
                continue
            values = [scores.get(user, 0) for user in members]
            trajectories[era.name][month] = float(np.median(values))
    return trajectories


@dataclass(frozen=True)
class ReputationPremium:
    """Mean counterparty reputation on completed vs failed deals."""

    era: str
    completed_mean: float
    failed_mean: float
    n_completed: int
    n_failed: int

    @property
    def premium(self) -> float:
        """Ratio of completed-deal to failed-deal counterparty reputation."""
        if self.failed_mean <= 0:
            return float("inf") if self.completed_mean > 0 else 1.0
        return self.completed_mean / self.failed_mean


def reputation_premium_by_era(dataset: MarketDataset) -> Dict[str, ReputationPremium]:
    """Does reputation at deal time predict completion?  Per era.

    For each contract, the taker's cumulative reputation as of the
    creation month is looked up; completed and failed
    (incomplete/cancelled/expired) deals are then compared.
    """
    scores_by_month = _cumulative_scores(dataset)
    months = sorted(scores_by_month)
    if not months:
        return {}

    def reputation_at(user: int, month: Month) -> int:
        # Last known cumulative score at or before the month.
        previous = [m for m in months if m <= month]
        if not previous:
            return 0
        return scores_by_month[previous[-1]].get(user, 0)

    failed_statuses = {
        ContractStatus.INCOMPLETE,
        ContractStatus.CANCELLED,
        ContractStatus.EXPIRED,
    }
    sums: Dict[Tuple[str, bool], List[float]] = defaultdict(list)
    for contract in dataset.contracts:
        era = era_of(contract.created_at)
        if era is None:
            continue
        if contract.is_complete:
            completed = True
        elif contract.status in failed_statuses:
            completed = False
        else:
            continue
        month = month_of(contract.created_at).prev()
        sums[(era.name, completed)].append(
            float(reputation_at(contract.taker_id, month))
        )

    result: Dict[str, ReputationPremium] = {}
    for era in ERAS:
        completed_scores = sums.get((era.name, True), [])
        failed_scores = sums.get((era.name, False), [])
        if not completed_scores or not failed_scores:
            continue
        result[era.name] = ReputationPremium(
            era=era.name,
            completed_mean=float(np.mean(completed_scores)),
            failed_mean=float(np.mean(failed_scores)),
            n_completed=len(completed_scores),
            n_failed=len(failed_scores),
        )
    return result
