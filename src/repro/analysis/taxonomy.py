"""Contract taxonomy and visibility tables (paper Tables 1 and 2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.dataset import MarketDataset
from ..core.kernels import count_dispatch
from ..core.entities import ContractStatus, ContractType, Visibility

__all__ = [
    "TaxonomyTable",
    "VisibilityTable",
    "contract_taxonomy",
    "visibility_table",
    "TYPE_ORDER",
    "STATUS_ORDER",
]

#: Row/column orders matching the paper's tables.
TYPE_ORDER: Tuple[ContractType, ...] = (
    ContractType.SALE,
    ContractType.PURCHASE,
    ContractType.EXCHANGE,
    ContractType.TRADE,
    ContractType.VOUCH_COPY,
)
STATUS_ORDER: Tuple[ContractStatus, ...] = (
    ContractStatus.COMPLETE,
    ContractStatus.ACTIVE_DEAL,
    ContractStatus.DISPUTED,
    ContractStatus.INCOMPLETE,
    ContractStatus.CANCELLED,
    ContractStatus.DENIED,
    ContractStatus.EXPIRED,
)


@dataclass
class TaxonomyTable:
    """Table 1: contract counts by type and status, with shares of total.

    ``counts[(ctype, status)]`` is the cell count; row/column totals and
    derived rates (completion, non-completion) are provided as helpers.
    """

    counts: Dict[Tuple[ContractType, ContractStatus], int]
    total: int

    def cell(self, ctype: ContractType, status: ContractStatus) -> int:
        return self.counts.get((ctype, status), 0)

    def cell_share(self, ctype: ContractType, status: ContractStatus) -> float:
        """Cell count as a share of ALL contracts (the paper's percents)."""
        return self.cell(ctype, status) / self.total if self.total else 0.0

    def row_total(self, ctype: ContractType) -> int:
        return sum(self.cell(ctype, status) for status in STATUS_ORDER)

    def row_share(self, ctype: ContractType) -> float:
        return self.row_total(ctype) / self.total if self.total else 0.0

    def column_total(self, status: ContractStatus) -> int:
        return sum(self.cell(ctype, status) for ctype in TYPE_ORDER)

    def completion_rate(self, ctype: ContractType) -> float:
        """Completed contracts over all contracts of the type."""
        row = self.row_total(ctype)
        return self.cell(ctype, ContractStatus.COMPLETE) / row if row else 0.0

    def non_completion_rate(self, ctype: ContractType) -> float:
        """The paper's 'non-completion': incomplete+cancelled+expired share."""
        row = self.row_total(ctype)
        if not row:
            return 0.0
        missed = (
            self.cell(ctype, ContractStatus.INCOMPLETE)
            + self.cell(ctype, ContractStatus.CANCELLED)
            + self.cell(ctype, ContractStatus.EXPIRED)
        )
        return missed / row


def contract_taxonomy(dataset: MarketDataset, fast: bool = True) -> TaxonomyTable:
    """Tabulate contracts by (type, status) — the paper's Table 1.

    ``fast`` computes the whole table as one ``np.bincount`` over the
    columnar store; ``fast=False`` keeps the object-path reference.
    """
    count_dispatch(fast)
    if fast:
        import numpy as np

        from ..core.columns import CTYPE_ORDER, STATUS_ORDER as STATUS_CODES

        store = dataset.columns()
        n_status = len(STATUS_CODES)
        grid = np.bincount(
            store.ctype.astype(np.int64) * n_status + store.status,
            minlength=len(CTYPE_ORDER) * n_status,
        ).reshape(len(CTYPE_ORDER), n_status)
        counts = {
            (ctype, status): int(grid[i, j])
            for i, ctype in enumerate(CTYPE_ORDER)
            for j, status in enumerate(STATUS_CODES)
            if grid[i, j]
        }
        return TaxonomyTable(counts=counts, total=store.n)

    counts = {}
    for contract in dataset.contracts:
        key = (contract.ctype, contract.status)
        counts[key] = counts.get(key, 0) + 1
    return TaxonomyTable(counts=counts, total=len(dataset.contracts))


@dataclass
class VisibilityTable:
    """Table 2: public/private split per type, for created and completed.

    ``created[(ctype, visibility)]`` / ``completed[...]`` are counts.
    """

    created: Dict[Tuple[ContractType, Visibility], int]
    completed: Dict[Tuple[ContractType, Visibility], int]

    def created_total(self, ctype: ContractType) -> int:
        return sum(
            self.created.get((ctype, vis), 0) for vis in Visibility
        )

    def completed_total(self, ctype: ContractType) -> int:
        return sum(
            self.completed.get((ctype, vis), 0) for vis in Visibility
        )

    def public_share_created(self, ctype: ContractType) -> float:
        total = self.created_total(ctype)
        return self.created.get((ctype, Visibility.PUBLIC), 0) / total if total else 0.0

    def public_share_completed(self, ctype: ContractType) -> float:
        total = self.completed_total(ctype)
        return self.completed.get((ctype, Visibility.PUBLIC), 0) / total if total else 0.0

    def overall_public_share(self, completed: bool = False) -> float:
        table = self.completed if completed else self.created
        total = sum(table.values())
        public = sum(
            count for (ctype, vis), count in table.items() if vis == Visibility.PUBLIC
        )
        return public / total if total else 0.0

    def completion_rate_by_visibility(self, visibility: Visibility) -> float:
        """Share of contracts of a visibility that completed (§3 reports
        57.0% for public vs 41.7% for private)."""
        created = sum(
            count for (ctype, vis), count in self.created.items() if vis == visibility
        )
        completed = sum(
            count for (ctype, vis), count in self.completed.items() if vis == visibility
        )
        return completed / created if created else 0.0


def visibility_table(dataset: MarketDataset, fast: bool = True) -> VisibilityTable:
    """Tabulate visibility per type for created and completed contracts."""
    count_dispatch(fast)
    if fast:
        import numpy as np

        from ..core.columns import CTYPE_ORDER, VISIBILITY_ORDER

        store = dataset.columns()
        n_vis = len(VISIBILITY_ORDER)
        cells = store.ctype.astype(np.int64) * n_vis + store.visibility
        minlength = len(CTYPE_ORDER) * n_vis

        def table(grid: np.ndarray) -> Dict[Tuple[ContractType, Visibility], int]:
            grid = grid.reshape(len(CTYPE_ORDER), n_vis)
            return {
                (ctype, vis): int(grid[i, j])
                for i, ctype in enumerate(CTYPE_ORDER)
                for j, vis in enumerate(VISIBILITY_ORDER)
                if grid[i, j]
            }

        return VisibilityTable(
            created=table(np.bincount(cells, minlength=minlength)),
            completed=table(
                np.bincount(cells[store.is_complete], minlength=minlength)
            ),
        )

    created: Dict[Tuple[ContractType, Visibility], int] = {}
    completed: Dict[Tuple[ContractType, Visibility], int] = {}
    for contract in dataset.contracts:
        key = (contract.ctype, contract.visibility)
        created[key] = created.get(key, 0) + 1
        if contract.is_complete:
            completed[key] = completed.get(key, 0) + 1
    return VisibilityTable(created=created, completed=completed)
