"""Latent class / latent transition analysis (§5.1).

Each user-month is a case described by ten counts: contracts *made* and
*accepted* in each of the five types.  A Poisson latent-class model
(Table 6's 12 classes, selected by AIC/BIC) classifies the cases; class
assignments then drive:

* Figures 12/13 — monthly transactions made/accepted per class;
* Table 8 — top maker-class -> taker-class flows per type per era;
* the latent *transition* matrix between consecutive months.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.dataset import MarketDataset
from ..core.entities import ContractType
from ..core.eras import ERAS, Era
from ..core.timeutils import Month, month_of
from ..stats.ltm import LatentTransitionResult, fit_latent_transitions
from ..stats.mixture import PoissonMixtureResult, select_poisson_mixture

__all__ = [
    "FEATURE_NAMES",
    "LatentClassModel",
    "FlowRow",
    "user_month_profiles",
    "fit_latent_classes",
    "class_activity_series",
    "era_transition_matrices",
    "top_flows",
]

_TYPES = (
    ContractType.EXCHANGE,
    ContractType.PURCHASE,
    ContractType.SALE,
    ContractType.TRADE,
    ContractType.VOUCH_COPY,
)

#: The ten count features of one user-month case.
FEATURE_NAMES: Tuple[str, ...] = tuple(
    [f"make_{t.name}" for t in _TYPES] + [f"take_{t.name}" for t in _TYPES]
)


def user_month_profiles(
    dataset: MarketDataset,
) -> Tuple[List[Dict[Hashable, np.ndarray]], List[Month]]:
    """Build the user-month count panel.

    Returns one dict per month (user id -> 10-vector) covering only users
    party to at least one contract created that month, plus the month
    grid — the paper "treats each month's activity for each user as a
    separate case".
    """
    panel_map: Dict[Month, Dict[int, np.ndarray]] = {}
    type_index = {ctype: i for i, ctype in enumerate(_TYPES)}
    for contract in dataset.contracts:
        month = month_of(contract.created_at)
        period = panel_map.setdefault(month, {})
        maker = period.get(contract.maker_id)
        if maker is None:
            maker = np.zeros(len(FEATURE_NAMES))
            period[contract.maker_id] = maker
        maker[type_index[contract.ctype]] += 1
        taker = period.get(contract.taker_id)
        if taker is None:
            taker = np.zeros(len(FEATURE_NAMES))
            period[contract.taker_id] = taker
        taker[len(_TYPES) + type_index[contract.ctype]] += 1

    months = sorted(panel_map)
    return [panel_map[m] for m in months], months


def _behaviour_label(rates: np.ndarray) -> str:
    """Auto-label a class from its rate vector (Table 6's last column)."""
    total = float(rates.sum())
    tier = "Power" if total >= 15 else ("Mid-level" if total >= 2.5 else "Single")
    dominant = int(np.argmax(rates))
    side = "maker" if dominant < len(_TYPES) else "taker"
    ctype = _TYPES[dominant % len(_TYPES)]
    noun = {
        ContractType.EXCHANGE: "Exchanger",
        ContractType.PURCHASE: "PURCHASE",
        ContractType.SALE: "SALE",
        ContractType.TRADE: "TRADE",
        ContractType.VOUCH_COPY: "VOUCH COPY",
    }[ctype]
    if noun == "Exchanger":
        return f"{tier} Exchanger ({side})"
    return f"{tier} {noun} {side}"


@dataclass
class LatentClassModel:
    """The fitted §5.1 model: measurement classes + monthly transitions."""

    ltm: LatentTransitionResult
    months: List[Month]
    class_labels: List[str]
    bic_by_k: Dict[int, float]

    @property
    def k(self) -> int:
        return self.ltm.k

    @property
    def mixture(self) -> PoissonMixtureResult:
        return self.ltm.mixture

    def table6(self) -> List[Tuple[str, List[float], str]]:
        """Table 6 rows: (class id, ten mean monthly rates, label)."""
        rows = []
        for index in range(self.k):
            rows.append(
                (
                    chr(ord("A") + index) if index < 26 else f"C{index}",
                    [float(r) for r in self.mixture.rates[index]],
                    self.class_labels[index],
                )
            )
        return rows

    def assignment_for(self, month: Month) -> Dict[Hashable, int]:
        """User -> class table for one month (empty dict if absent)."""
        try:
            position = self.months.index(month)
        except ValueError:
            return {}
        return self.ltm.assignments[position]


def fit_latent_classes(
    dataset: MarketDataset,
    k: int = 12,
    select: bool = False,
    k_range: Tuple[int, int] = (6, 14),
    seed: int = 0,
    n_init: int = 3,
) -> LatentClassModel:
    """Fit the latent class + transition model on the user-month panel.

    With ``select=True`` the class count is chosen by BIC over
    ``k_range`` (the paper found 12 "most accurate and parsimonious per
    AIC and BIC"); otherwise ``k`` is used directly.
    """
    panel, months = user_month_profiles(dataset)
    if not panel:
        raise ValueError("dataset has no contracts")
    bic_by_k: Dict[int, float] = {}
    mixture: Optional[PoissonMixtureResult] = None
    if select:
        pooled = np.vstack([np.vstack(list(p.values())) for p in panel if p])
        mixture, bic_by_k = select_poisson_mixture(
            pooled, k_range=k_range, seed=seed, n_init=n_init,
            feature_names=list(FEATURE_NAMES),
        )
        k = mixture.k
    ltm = fit_latent_transitions(
        panel, k=k, seed=seed, n_init=n_init,
        feature_names=list(FEATURE_NAMES), mixture=mixture,
    )
    labels = [_behaviour_label(ltm.mixture.rates[i]) for i in range(ltm.k)]
    return LatentClassModel(ltm=ltm, months=months, class_labels=labels, bic_by_k=bic_by_k)


def class_activity_series(
    dataset: MarketDataset,
    model: LatentClassModel,
    role: str = "made",
    types: Sequence[ContractType] = (
        ContractType.EXCHANGE,
        ContractType.PURCHASE,
        ContractType.SALE,
    ),
) -> Dict[ContractType, Dict[int, Dict[Month, int]]]:
    """Figures 12/13: monthly transactions per class.

    ``role`` is "made" (classify by the maker's class that month, Figure
    12) or "accepted" (taker's class, Figure 13).  Returns
    ``{ctype: {class_index: {month: count}}}``.
    """
    if role not in ("made", "accepted"):
        raise ValueError("role must be 'made' or 'accepted'")
    month_positions = {month: i for i, month in enumerate(model.months)}
    wanted = set(types)
    series: Dict[ContractType, Dict[int, Dict[Month, int]]] = {
        ctype: {} for ctype in wanted
    }
    for contract in dataset.contracts:
        if contract.ctype not in wanted:
            continue
        month = month_of(contract.created_at)
        position = month_positions.get(month)
        if position is None:
            continue
        user = contract.maker_id if role == "made" else contract.taker_id
        klass = model.ltm.assignments[position].get(user)
        if klass is None:
            continue
        bucket = series[contract.ctype].setdefault(klass, {})
        bucket[month] = bucket.get(month, 0) + 1
    return series


def era_transition_matrices(
    model: LatentClassModel, smoothing: float = 0.5
) -> Dict[str, np.ndarray]:
    """Per-era class-transition matrices.

    The pooled LTM gives one transition matrix for the whole window; the
    paper's narrative, however, is about how mobility *changes* between
    eras (SET-UP's orientation phase vs STABLE's settled roles).  This
    aggregates consecutive-month transitions separately within each era
    and returns one row-stochastic matrix per era name.
    """
    k = model.k
    counts: Dict[str, np.ndarray] = {
        era.name: np.full((k, k), smoothing) for era in ERAS
    }
    for position in range(len(model.months) - 1):
        month = model.months[position]
        mid = month.first_day().replace(day=15)
        era = None
        for candidate in ERAS:
            if candidate.contains(mid):
                era = candidate
                break
        if era is None:
            continue
        now = model.ltm.assignments[position]
        nxt = model.ltm.assignments[position + 1]
        matrix = counts[era.name]
        for user, source in now.items():
            target = nxt.get(user)
            if target is not None:
                matrix[source, target] += 1.0
    return {
        name: matrix / matrix.sum(axis=1, keepdims=True)
        for name, matrix in counts.items()
    }


@dataclass(frozen=True)
class FlowRow:
    """One Table 8 row: a maker-class -> taker-class flow within an era."""

    era: str
    ctype: ContractType
    maker_class: int
    taker_class: int
    total: int
    avg_per_month: float
    share_of_type: float


def top_flows(
    dataset: MarketDataset,
    model: LatentClassModel,
    top_n: int = 3,
    types: Sequence[ContractType] = (
        ContractType.EXCHANGE,
        ContractType.PURCHASE,
        ContractType.SALE,
    ),
) -> List[FlowRow]:
    """Table 8: the top maker->taker class flows per type per era."""
    month_positions = {month: i for i, month in enumerate(model.months)}
    wanted = set(types)

    flows: Dict[Tuple[Era, ContractType, int, int], int] = {}
    type_totals: Dict[Tuple[Era, ContractType], int] = {}
    for contract in dataset.contracts:
        if contract.ctype not in wanted:
            continue
        era = dataset.era_of_contract(contract)
        if era is None:
            continue
        month = month_of(contract.created_at)
        position = month_positions.get(month)
        if position is None:
            continue
        assignment = model.ltm.assignments[position]
        maker_class = assignment.get(contract.maker_id)
        taker_class = assignment.get(contract.taker_id)
        if maker_class is None or taker_class is None:
            continue
        key = (era, contract.ctype, maker_class, taker_class)
        flows[key] = flows.get(key, 0) + 1
        type_totals[(era, contract.ctype)] = type_totals.get((era, contract.ctype), 0) + 1

    rows: List[FlowRow] = []
    for era in ERAS:
        months_in_era = len(era.months())
        for ctype in types:
            candidates = [
                (key, count)
                for key, count in flows.items()
                if key[0] == era and key[1] == ctype
            ]
            candidates.sort(key=lambda kv: -kv[1])
            total_of_type = type_totals.get((era, ctype), 0)
            for (era_, ctype_, maker_class, taker_class), count in candidates[:top_n]:
                rows.append(
                    FlowRow(
                        era=era.name,
                        ctype=ctype,
                        maker_class=maker_class,
                        taker_class=taker_class,
                        total=count,
                        avg_per_month=count / months_in_era,
                        share_of_type=count / total_of_type if total_of_type else 0.0,
                    )
                )
    return rows
