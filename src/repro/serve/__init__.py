"""repro.serve — the market-as-a-service HTTP layer.

Serves dataset generation, cached streaming slices and the full
experiment registry over HTTP with deterministic, replayable
responses: every computing endpoint reduces its request to a
:class:`~repro.runs.contract.RunContext`, and the context's
``run_key()`` resolves through an in-process memo, the persistent
:class:`~repro.runs.store.RunStore` and finally the dataset cache —
identical requests return byte-identical bodies whichever tier
answers (``X-Serve-Source`` says which).

The stack is dependency-free: :mod:`repro.serve.asgi` is a minimal
ASGI 3 toolkit, :mod:`repro.serve.server` a bundled asyncio HTTP/1.1
server, :mod:`repro.serve.testclient` an in-process client.  Auth
(:mod:`repro.serve.auth`), per-key token-bucket rate limiting
(:mod:`repro.serve.ratelimit`) and the service layer
(:mod:`repro.serve.services` — single-flight compute on executor
threads and forked workers) are composed by
:func:`~repro.serve.app.create_app` from one frozen
:class:`~repro.serve.settings.ServeSettings`.

Start one with ``python -m repro serve --api-key KEY``; see
``docs/serving.md`` for endpoints, the determinism contract and a
worked session.
"""

from .app import create_app
from .asgi import App, HTTPError, Request, Response
from .server import BackgroundServer, serve_forever
from .services import MarketService, ServeReply
from .settings import ServeSettings
from .testclient import TestClient, TestResponse

__all__ = [
    "App",
    "BackgroundServer",
    "HTTPError",
    "MarketService",
    "Request",
    "Response",
    "ServeReply",
    "ServeSettings",
    "TestClient",
    "TestResponse",
    "create_app",
    "serve_forever",
]
