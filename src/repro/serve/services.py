"""The service layer: deterministic, cached execution of serve requests.

Every endpoint that computes anything reduces its request to a frozen
:class:`~repro.runs.contract.RunContext` whose
:meth:`~repro.runs.contract.RunContext.run_key` *is* the cache key.
:meth:`MarketService.execute` then resolves that key through three
tiers, cheapest first:

1. **memo** — an in-process map of run_key → response payload;
2. **store** — a completed run with the same key in the persistent
   :class:`~repro.runs.store.RunStore` (so replays survive restarts and
   are shared between server processes pointed at one runs dir);
3. **compute** — generate through the ordinary dataset cache
   (:mod:`repro.synth.cache`, itself keyed on the config fingerprint
   inside the run key) and run the experiments, recording the new run.

Tier 3 is single-flight: concurrent requests for the same key serialize
on a per-key lock and re-check the memo/store inside it, so two
simultaneous identical requests trigger exactly one generation — the
second serves the first's bytes.  Responses are built exclusively from
deterministic result fields (never timings or attempt counts), so all
three tiers yield byte-identical JSON for one key.

Compute normally hops to a forked worker
(:func:`repro.robust.parallel.forked_call`): the executor threads a
server runs handlers on cannot arm ``SIGALRM``
(``RetryOutcome.enforced`` would be False), while a forked child's main
thread can — that is what makes ``timeout_seconds`` a real bound here.
"""

from __future__ import annotations

import platform
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .. import __version__
from ..obs.manifest import RunManifest, write_manifest
from ..obs.tracer import get_tracer
from ..robust.parallel import forked_call
from ..runs.contract import ExperimentResult, RunContext
from ..runs.runner import detect_git_rev
from ..runs.store import RunsError, RunStore
from ..synth.config import SimulationConfig
from .settings import ServeSettings

__all__ = ["ServeReply", "MarketService", "response_payload"]


@dataclass
class ServeReply:
    """What the service hands back to a router.

    ``source`` names the tier that produced the payload (``memo`` /
    ``store`` / ``computed``); ``ok`` is False when any requested
    experiment degraded to a recorded failure (rendered as HTTP 500,
    never memoized).
    """

    payload: Dict[str, Any]
    source: str
    ok: bool = True
    run_key: str = ""


def _result_payload(result: ExperimentResult) -> Dict[str, Any]:
    """The deterministic slice of one result.

    Timings, attempt counts and tracebacks vary between identical runs
    and are deliberately excluded — they live in the run store, not in
    the byte-stable response.
    """
    payload: Dict[str, Any] = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "status": result.status,
        "lines": list(result.lines),
        "metrics": {k: float(v) for k, v in result.metrics.items()},
        "text_sha256": result.text_digest(),
    }
    if result.error is not None:
        payload["error"] = {
            "type": result.error.get("type"),
            "message": result.error.get("message"),
        }
    return payload


def response_payload(
    context: RunContext, results: List[ExperimentResult]
) -> Dict[str, Any]:
    """The full JSON payload for one resolved context."""
    return {
        "command": context.command,
        "run_key": context.run_key(),
        "config_sha256": context.config_sha256,
        "seed": context.seed,
        "scale": context.scale,
        "engine": context.engine,
        "store": context.store,
        "params": dict(context.params),
        "experiments": list(context.experiments),
        "results": [_result_payload(result) for result in results],
    }


def _summary_lines(summary: Mapping[str, int]) -> List[str]:
    return [f"{key:<22s} {summary[key]:>12,}" for key in sorted(summary)]


def _compute_results(spec: Mapping[str, Any]) -> List[ExperimentResult]:
    """Execute one serve context end to end (runs in the forked child).

    ``spec`` is a plain picklable dict — ``{"context": <RunContext
    payload>, "cache_dir": ...}`` — because this function crosses the
    fork boundary.  The dataset always comes through the on-disk cache,
    so a re-computation after an eviction of the memo/run-store tiers
    still reuses generated data.
    """
    from ..report.stream_experiments import run_stream_result
    from ..runs.contract import extract_metrics
    from ..synth.cache import cached_generate, cached_partitioned_store

    context = RunContext.from_payload(spec["context"])
    cache_dir = spec.get("cache_dir")
    policy = context.retry_policy()
    overrides = {
        k: v
        for k, v in dict(context.config).items()
        if k not in ("scale", "seed")
    }

    if context.command == "serve-stream":
        params = dict(context.params)
        store, _hit = cached_partitioned_store(
            scale=context.scale,
            seed=context.seed,
            cache_dir=cache_dir,
            **overrides,
        )
        results = []
        for result_id in context.experiments:
            raw = (
                result_id[len("stream-"):]
                if result_id.startswith("stream-")
                else result_id
            )
            results.append(
                run_stream_result(
                    raw,
                    store,
                    start=params.get("start"),
                    end=params.get("end"),
                    era=params.get("era"),
                    policy=policy,
                )
            )
        return results

    result, _hit = cached_generate(
        scale=context.scale,
        seed=context.seed,
        cache_dir=cache_dir,
        **overrides,
    )

    if context.command == "serve-summary":
        lines = _summary_lines(result.dataset.summary())
        return [
            ExperimentResult(
                "summary",
                "dataset summary",
                lines,
                0.0,
                metrics=extract_metrics(lines),
            )
        ]

    from ..report.experiments import ExperimentContext, run_all_experiments

    ctx = ExperimentContext(result, latent_k=context.latent_k)
    return run_all_experiments(
        ctx, list(context.experiments), parallel=1, policy=policy
    )


class MarketService:
    """Resolve serve contexts through memo → run store → compute."""

    def __init__(self, settings: ServeSettings) -> None:
        self.settings = settings
        self.store: Optional[RunStore] = (
            RunStore(settings.runs_dir) if settings.use_run_store else None
        )
        self._memo: Dict[str, Dict[str, Any]] = {}
        self._memo_lock = threading.Lock()
        self._inflight: Dict[str, threading.Lock] = {}
        self._git_rev = detect_git_rev()

    # ------------------------------------------------------- contexts

    def build_context(
        self,
        command: str,
        experiments: Tuple[str, ...],
        scale: float,
        seed: int,
        *,
        engine: str = "auto",
        posts: bool = True,
        latent_k: int = 12,
        store_kind: str = "resident",
        params: Optional[Dict[str, Any]] = None,
    ) -> RunContext:
        """A serve-originated :class:`RunContext` for one request.

        Raises ``ValueError`` for an unbuildable config — routers map
        that to a 400.
        """
        from ..synth.cache import config_fingerprint

        config = SimulationConfig(
            scale=scale, seed=seed, engine=engine, generate_posts=posts
        )
        return RunContext(
            command=command,
            config_sha256=config_fingerprint(config),
            seed=seed,
            scale=scale,
            engine=config.resolved_engine,
            store=store_kind,
            experiments=experiments,
            latent_k=latent_k,
            package_version=__version__,
            python_version=platform.python_version(),
            git_rev=self._git_rev,
            max_retries=max(0, self.settings.max_retries),
            retry_backoff=max(0.0, self.settings.retry_backoff),
            timeout_seconds=self.settings.timeout_seconds,
            params=dict(params or {}),
            config={
                "scale": scale,
                "seed": seed,
                "engine": engine,
                "generate_posts": posts,
            },
        )

    # ------------------------------------------------------ resolution

    def execute(self, context: RunContext, request_id: str = "") -> ServeReply:
        """Resolve ``context`` to a reply; blocking, call off the loop."""
        key = context.run_key()
        memo = self._memo_get(key)
        if memo is not None:
            get_tracer().count("serve.memo_hit")
            return ServeReply(memo, "memo", ok=True, run_key=key)
        with self._key_lock(key):
            memo = self._memo_get(key)
            if memo is not None:
                get_tracer().count("serve.memo_hit")
                return ServeReply(memo, "memo", ok=True, run_key=key)
            stored = self._stored_payload(context, key)
            if stored is not None:
                get_tracer().count("serve.store_hit")
                self._memo_put(key, stored)
                return ServeReply(stored, "store", ok=True, run_key=key)
            payload, ok = self._compute_and_record(context, request_id)
            if ok:
                self._memo_put(key, payload)
            return ServeReply(payload, "computed", ok=ok, run_key=key)

    def _memo_get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._memo_lock:
            return self._memo.get(key)

    def _memo_put(self, key: str, payload: Dict[str, Any]) -> None:
        with self._memo_lock:
            self._memo[key] = payload

    def _key_lock(self, key: str) -> threading.Lock:
        with self._memo_lock:
            return self._inflight.setdefault(key, threading.Lock())

    def _stored_payload(
        self, context: RunContext, key: str
    ) -> Optional[Dict[str, Any]]:
        """A payload rebuilt from a completed identical run, if any."""
        if self.store is None:
            return None
        base = context.run_name()
        for run_id in self.store.run_ids():
            if run_id != base and not run_id.startswith(base + "-"):
                continue
            try:
                record = self.store.load(run_id)
            except RunsError:  # robust: a damaged run directory means "no replay available", never a failed request — compute instead
                continue
            if not record.ok or record.context.run_key() != key:
                continue
            results = []
            complete = True
            for experiment_id in context.experiments:
                result = record.results.get(experiment_id)
                if result is None or not result.ok:
                    complete = False
                    break
                results.append(result)
            if not complete:
                continue
            return response_payload(context, results)
        return None

    def _compute_and_record(
        self, context: RunContext, request_id: str
    ) -> Tuple[Dict[str, Any], bool]:
        tracer = get_tracer()
        tracer.count("serve.compute")
        spec = {
            "context": context.to_payload(),
            "cache_dir": self.settings.cache_dir,
        }
        if self.settings.use_fork:
            results, forked = forked_call(
                _compute_results,
                spec,
                span="serve.compute",
                fallback_counter="serve.compute_inline",
            )
        else:
            results, forked = _compute_results(spec), False
        for result in results:
            result.trace = None
        ok = all(result.ok for result in results)
        self._record(context, results, request_id, forked)
        return response_payload(context, results), ok

    def _record(
        self,
        context: RunContext,
        results: List[ExperimentResult],
        request_id: str,
        forked: bool,
    ) -> None:
        """Persist the computed run (best-effort — serving wins)."""
        if self.store is None:
            return
        clock = self.settings.clock
        created = clock() if clock is not None else None
        try:
            handle = self.store.begin(context, created_unix=created)
            for result in results:
                handle.record(result)
            record = handle.finish()
            manifest = RunManifest(
                command=context.command,
                config_sha256=context.config_sha256,
                seed=context.seed,
                scale=context.scale,
                package_version=__version__,
                python_version=platform.python_version(),
                created_unix=created,
                run_id=record.run_id,
                request_id=request_id or None,
                params={
                    **dict(context.params),
                    "forked": forked,
                    "experiments": len(results),
                },
                experiments=[
                    {
                        "id": result.experiment_id,
                        "seconds": result.seconds,
                        "attempts": result.attempts,
                        **({"error": result.error} if result.error else {}),
                    }
                    for result in results
                ],
                total_seconds=sum(result.seconds for result in results),
            )
            write_manifest(manifest, record.manifest_path())
        except Exception:  # robust: run-store persistence is provenance, not the product — a full disk or permission error must not fail the request that already computed its answer
            get_tracer().count("serve.record_failed")

    # -------------------------------------------------------- queries

    def list_runs(self, **filters: Any) -> List[Dict[str, Any]]:
        """Run-store listing for the ``/v1/runs`` endpoints."""
        if self.store is None:
            return []
        out = []
        for record in self.store.list_runs(**filters):
            out.append(
                {
                    "run_id": record.run_id,
                    "command": record.context.command,
                    "status": record.status,
                    "seed": record.context.seed,
                    "scale": record.context.scale,
                    "experiments": list(record.context.experiments),
                    "n_recorded": record.n_recorded,
                    "created_unix": record.created_unix,
                }
            )
        return out

    def run_detail(self, run_id: str) -> Optional[Dict[str, Any]]:
        """One run in detail, or ``None`` for an unknown id."""
        if self.store is None:
            return None
        from ..runs.store import UnknownRunError

        try:
            record = self.store.load(run_id)
        except UnknownRunError:
            return None
        return {
            "run_id": record.run_id,
            "command": record.context.command,
            "status": record.status,
            "run_key": record.context.run_key(),
            "context": record.context.to_payload(),
            "created_unix": record.created_unix,
            "total_seconds": record.total_seconds,
            "results": [
                _result_payload(record.results[experiment_id])
                for experiment_id in sorted(record.results)
            ],
        }
