"""Endpoint handlers: HTTP in, :class:`~repro.serve.services.ServeReply` out.

Routers only parse and validate; everything that computes goes through
:meth:`~repro.serve.services.MarketService.execute` **on an executor
thread** (``loop.run_in_executor``) so the event loop stays free to
accept connections while datasets generate.  See ``docs/serving.md``
for the endpoint catalogue and the determinism contract each response
carries (``X-Serve-Source`` / ``X-Run-Key`` headers, byte-identical
bodies per run key).
"""

from __future__ import annotations

import asyncio
import re
from typing import Any, Dict, Optional, Tuple

from .. import __version__
from ..core.eras import ERAS, era_by_name
from ..report.experiments import EXPERIMENTS
from ..report.stream_experiments import STREAM_EXPERIMENTS
from .asgi import App, HTTPError, Request, Response
from .services import MarketService, ServeReply
from .settings import ServeSettings

__all__ = ["register_routes"]

_MONTH_RE = re.compile(r"^\d{4}-\d{2}$")
_ERA_NAMES = tuple(era.name for era in ERAS)


def _service(request: Request) -> MarketService:
    assert request.app is not None
    return request.app.state["service"]


def _settings(request: Request) -> ServeSettings:
    assert request.app is not None
    return request.app.state["settings"]


def _parse_float(request: Request, name: str, default: float) -> float:
    raw = request.query.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise HTTPError(400, f"query parameter {name!r} must be a number")


def _parse_int(request: Request, name: str, default: int) -> int:
    raw = request.query.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise HTTPError(400, f"query parameter {name!r} must be an integer")


def _parse_bool(request: Request, name: str, default: bool) -> bool:
    raw = request.query.get(name)
    if raw is None:
        return default
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise HTTPError(400, f"query parameter {name!r} must be a boolean")


def _market_params(request: Request) -> Dict[str, Any]:
    """The shared (scale, seed, posts, engine, latent_k) query block."""
    settings = _settings(request)
    scale = _parse_float(request, "scale", 0.01)
    if not (0.0 < scale <= settings.max_scale):
        raise HTTPError(
            400,
            f"scale must be in (0, {settings.max_scale:g}] "
            f"(this server's --max-scale)",
        )
    seed = _parse_int(request, "seed", 20201027)
    posts = _parse_bool(request, "posts", True)
    engine = request.query.get("engine", "auto")
    if engine not in ("auto", "object", "fastgen"):
        raise HTTPError(400, "engine must be one of auto, object, fastgen")
    latent_k = _parse_int(request, "latent_k", 12)
    if not (1 <= latent_k <= 64):
        raise HTTPError(400, "latent_k must be in [1, 64]")
    return {
        "scale": scale,
        "seed": seed,
        "posts": posts,
        "engine": engine,
        "latent_k": latent_k,
    }


def _window_params(request: Request) -> Dict[str, Any]:
    """Streaming window selection: start / end months, era name."""
    params: Dict[str, Any] = {}
    for name in ("start", "end"):
        raw = request.query.get(name)
        if raw is not None:
            if not _MONTH_RE.match(raw):
                raise HTTPError(
                    400, f"query parameter {name!r} must look like YYYY-MM"
                )
            params[name] = raw
    era = request.query.get("era")
    if era is not None:
        try:
            # Canonicalize ("e3" / "COVID-19" / "covid19" → "COVID-19")
            # so every spelling of one era shares one run key.
            params["era"] = era_by_name(era).name
        except KeyError:
            raise HTTPError(
                400, f"unknown era {era!r}; one of: {', '.join(_ERA_NAMES)}"
            )
    return params


async def _resolve(request: Request, context: Any) -> Response:
    """Execute a context off-loop and render the reply."""
    service = _service(request)
    request_id = str(request.state.get("request_id", ""))
    loop = asyncio.get_running_loop()
    assert request.app is not None
    executor = request.app.state["executor"]
    reply: ServeReply = await loop.run_in_executor(
        executor, service.execute, context, request_id
    )
    return Response.json(
        reply.payload,
        status=200 if reply.ok else 500,
        headers=[
            ("x-serve-source", reply.source),
            ("x-run-key", reply.run_key),
        ],
    )


def _build_context(
    request: Request,
    command: str,
    experiments: Tuple[str, ...],
    market: Dict[str, Any],
    *,
    store_kind: str = "resident",
    params: Optional[Dict[str, Any]] = None,
) -> Any:
    service = _service(request)
    try:
        return service.build_context(
            command,
            experiments,
            market["scale"],
            market["seed"],
            engine=market["engine"],
            posts=market["posts"],
            latent_k=market["latent_k"],
            store_kind=store_kind,
            params=params,
        )
    except (TypeError, ValueError) as exc:
        raise HTTPError(400, f"invalid market parameters: {exc}")


# ----------------------------------------------------------------- handlers


async def healthz(request: Request) -> Response:
    """Unauthenticated liveness probe."""
    return Response.json({"status": "ok", "version": __version__})


async def meta(request: Request) -> Response:
    """Server capabilities: registries, eras, limits."""
    settings = _settings(request)
    return Response.json(
        {
            "version": __version__,
            "experiments": sorted(EXPERIMENTS),
            "slices": sorted(STREAM_EXPERIMENTS),
            "eras": list(_ERA_NAMES),
            "max_scale": settings.max_scale,
            "rate": {
                "capacity": settings.rate_capacity,
                "refill_per_second": settings.rate_refill_per_second,
            },
        }
    )


async def experiment(request: Request) -> Response:
    """One classic experiment (``table1`` … ``trust``)."""
    experiment_id = request.path_params["experiment_id"]
    if experiment_id not in EXPERIMENTS:
        raise HTTPError(404, f"unknown experiment {experiment_id!r}")
    market = _market_params(request)
    context = _build_context(
        request, "serve-report", (experiment_id,), market
    )
    return await _resolve(request, context)


async def report(request: Request) -> Response:
    """A batch of classic experiments (POST body selects them)."""
    body = request.json()
    if not isinstance(body, dict):
        raise HTTPError(400, "body must be a JSON object")
    wanted = body.get("experiments") or sorted(EXPERIMENTS)
    if not isinstance(wanted, list) or not all(
        isinstance(item, str) for item in wanted
    ):
        raise HTTPError(400, "'experiments' must be a list of ids")
    unknown = [item for item in wanted if item not in EXPERIMENTS]
    if unknown:
        raise HTTPError(400, f"unknown experiment ids: {', '.join(unknown)}")
    market = _market_params(request)
    context = _build_context(
        request, "serve-report", tuple(wanted), market
    )
    return await _resolve(request, context)


async def dataset_summary(request: Request) -> Response:
    """Entity counts for one generated market."""
    market = _market_params(request)
    context = _build_context(
        request, "serve-summary", ("summary",), market
    )
    return await _resolve(request, context)


async def market_slice(request: Request) -> Response:
    """One streaming slice over the partitioned store.

    ``start``/``end`` (YYYY-MM) and ``era`` select the window; only the
    touched month partitions are opened.
    """
    slice_id = request.path_params["slice_id"]
    if slice_id not in STREAM_EXPERIMENTS:
        raise HTTPError(404, f"unknown slice {slice_id!r}")
    market = _market_params(request)
    window = _window_params(request)
    context = _build_context(
        request,
        "serve-stream",
        (f"stream-{slice_id}",),
        market,
        store_kind="partitioned",
        params=window,
    )
    return await _resolve(request, context)


async def runs_index(request: Request) -> Response:
    """Filterable run-store listing (live state, never cached)."""
    service = _service(request)
    filters: Dict[str, Any] = {}
    if "command" in request.query:
        filters["command"] = request.query["command"]
    if "status" in request.query:
        filters["status"] = request.query["status"]
    if "seed" in request.query:
        filters["seed"] = _parse_int(request, "seed", 0)
    if "scale" in request.query:
        filters["scale"] = _parse_float(request, "scale", 0.0)
    loop = asyncio.get_running_loop()
    assert request.app is not None
    runs = await loop.run_in_executor(
        request.app.state["executor"],
        lambda: service.list_runs(**filters),
    )
    return Response.json(
        {"runs": runs}, headers=[("x-serve-source", "live")]
    )


async def runs_show(request: Request) -> Response:
    """One persisted run in detail."""
    service = _service(request)
    run_id = request.path_params["run_id"]
    loop = asyncio.get_running_loop()
    assert request.app is not None
    detail = await loop.run_in_executor(
        request.app.state["executor"], service.run_detail, run_id
    )
    if detail is None:
        raise HTTPError(404, f"unknown run {run_id!r}")
    return Response.json(detail, headers=[("x-serve-source", "live")])


def register_routes(app: App) -> None:
    """Attach every endpoint to ``app``."""
    app.add_route("GET", "/healthz", healthz, name="healthz")
    app.add_route("GET", "/v1/meta", meta, name="meta")
    app.add_route(
        "GET", "/v1/experiments/{experiment_id}", experiment,
        name="experiment",
    )
    app.add_route("POST", "/v1/reports", report, name="report")
    app.add_route(
        "GET", "/v1/dataset/summary", dataset_summary, name="summary"
    )
    app.add_route("GET", "/v1/slices/{slice_id}", market_slice, name="slice")
    app.add_route("GET", "/v1/runs", runs_index, name="runs")
    app.add_route("GET", "/v1/runs/{run_id}", runs_show, name="runs.show")
