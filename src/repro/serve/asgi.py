"""A minimal ASGI 3 toolkit: request/response, routing, middleware.

The serving layer (:mod:`repro.serve`) needs exactly four things from a
web framework — parse an HTTP request, match a route with path
parameters, thread middleware around the handler, and render a JSON
response — and needs them *deterministic*: identical payloads must
serialize to identical bytes so the replay contract in
``docs/serving.md`` can promise byte-equality.  This module provides
those four things against the standard ASGI 3 interface
(``scope``/``receive``/``send``) with no third-party dependency, so the
app runs under the bundled :mod:`repro.serve.server`, the in-process
:mod:`repro.serve.testclient`, or any external ASGI server
interchangeably.

Handlers are ``async`` and must stay non-blocking: CPU-bound work is
dispatched through the service layer onto executor threads and forked
workers (see :mod:`repro.serve.services`), never run on the event loop.
"""

from __future__ import annotations

import itertools
import json
import threading
import urllib.parse
from typing import (
    Any,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..obs.tracer import get_tracer

__all__ = [
    "HTTPError",
    "Request",
    "Response",
    "json_bytes",
    "App",
]

Headers = List[Tuple[str, str]]
Handler = Callable[["Request"], Awaitable["Response"]]
Middleware = Callable[["Request", Handler], Awaitable["Response"]]


def json_bytes(payload: Any) -> bytes:
    """Canonical JSON encoding: sorted keys, fixed separators, UTF-8.

    The determinism contract hangs off this function: two structurally
    equal payloads — whatever dict insertion order produced them —
    encode to the same bytes.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


class HTTPError(Exception):
    """An error with an HTTP status; rendered as a JSON error body.

    Raise from handlers or middleware; the app converts it to a
    ``{"error": ..., "status": ...}`` response carrying ``headers``
    (e.g. ``Retry-After`` on a 429).
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Headers] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers: Headers = list(headers or [])


class Request:
    """One parsed HTTP request.

    ``headers`` keys are lower-cased; ``query`` holds the first value
    of each query parameter; ``path_params`` is filled by the router;
    ``state`` is a per-request scratch dict middleware can write to
    (e.g. the authenticated API key).
    """

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
        client: str = "",
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        self.client = client
        self.path_params: Dict[str, str] = {}
        self.state: Dict[str, Any] = {}
        self.app: Optional["App"] = None

    @classmethod
    def from_scope(cls, scope: Dict[str, Any], body: bytes) -> "Request":
        headers: Dict[str, str] = {}
        for raw_name, raw_value in scope.get("headers") or []:
            headers[raw_name.decode("latin-1").lower()] = raw_value.decode(
                "latin-1"
            )
        query: Dict[str, str] = {}
        raw_query = scope.get("query_string") or b""
        for name, value in urllib.parse.parse_qsl(
            raw_query.decode("latin-1"), keep_blank_values=True
        ):
            query.setdefault(name, value)
        client = scope.get("client") or ("", 0)
        return cls(
            method=str(scope.get("method", "GET")).upper(),
            path=scope.get("path", "/"),
            query=query,
            headers=headers,
            body=body,
            client=str(client[0]) if client else "",
        )

    def json(self) -> Any:
        """The parsed JSON body; :class:`HTTPError` 400 when invalid."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HTTPError(400, f"invalid JSON body: {exc}")


class Response:
    """One HTTP response: status, headers, body bytes."""

    def __init__(
        self,
        status: int = 200,
        body: bytes = b"",
        content_type: str = "application/json",
        headers: Optional[Headers] = None,
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers: Headers = list(headers or [])

    @classmethod
    def json(
        cls,
        payload: Any,
        status: int = 200,
        headers: Optional[Headers] = None,
    ) -> "Response":
        """A canonical-JSON response (see :func:`json_bytes`)."""
        return cls(status=status, body=json_bytes(payload), headers=headers)

    def header_list(self) -> Headers:
        return [("content-type", self.content_type)] + self.headers


class _Route:
    """One compiled route: method, pattern segments, handler, name."""

    def __init__(
        self, method: str, pattern: str, handler: Handler, name: str
    ) -> None:
        self.method = method.upper()
        self.pattern = pattern
        self.handler = handler
        self.name = name
        self.segments: Sequence[str] = tuple(
            seg for seg in pattern.strip("/").split("/") if seg != ""
        )

    def match(self, method: str, path: str) -> Optional[Dict[str, str]]:
        if method != self.method:
            return None
        parts = tuple(seg for seg in path.strip("/").split("/") if seg != "")
        if len(parts) != len(self.segments):
            return None
        params: Dict[str, str] = {}
        for pattern_seg, part in zip(self.segments, parts):
            if pattern_seg.startswith("{") and pattern_seg.endswith("}"):
                params[pattern_seg[1:-1]] = part
            elif pattern_seg != part:
                return None
        return params


class App:
    """An ASGI 3 application: routes + middleware + request ids.

    Every response carries an ``X-Request-ID`` header from a
    process-local counter — deterministic (reprolint R002: no wall
    clock, no uuid4) and unique within the process, which is what run
    manifests record.  Middleware wraps handlers outermost-first in the
    order added.  Unhandled exceptions become JSON 500s; they never
    propagate to the server.
    """

    def __init__(self) -> None:
        self.state: Dict[str, Any] = {}
        self._routes: List[_Route] = []
        self._middleware: List[Middleware] = []
        self._request_counter = itertools.count(1)
        self._counter_lock = threading.Lock()

    # ------------------------------------------------------------ setup

    def add_route(
        self,
        method: str,
        pattern: str,
        handler: Handler,
        name: Optional[str] = None,
    ) -> None:
        route_name = name or pattern.strip("/").replace("/", ".") or "root"
        self._routes.append(_Route(method, pattern, handler, route_name))

    def add_middleware(self, middleware: Middleware) -> None:
        self._middleware.append(middleware)

    # --------------------------------------------------------- dispatch

    def _next_request_id(self) -> str:
        with self._counter_lock:
            return f"req-{next(self._request_counter):06d}"

    def _match(
        self, method: str, path: str
    ) -> Tuple[Optional[_Route], Dict[str, str]]:
        for route in self._routes:
            params = route.match(method, path)
            if params is not None:
                return route, params
        return None, {}

    async def _dispatch(self, request: Request) -> Response:
        tracer = get_tracer()

        async def endpoint(req: Request) -> Response:
            route, params = self._match(req.method, req.path)
            if route is None:
                raise HTTPError(404, f"no route for {req.method} {req.path}")
            req.path_params = params
            with tracer.span(f"serve.{route.name}"):
                return await route.handler(req)

        handler: Handler = endpoint
        for middleware in reversed(self._middleware):
            handler = _bind(middleware, handler)
        try:
            response = await handler(request)
        except HTTPError as exc:
            response = Response.json(
                {"error": exc.message, "status": exc.status},
                status=exc.status,
                headers=exc.headers,
            )
        except Exception:  # robust: the app is the last line of defence — an unhandled handler bug must become a 500, never tear down the server loop
            tracer.count("serve.errors")
            response = Response.json(
                {"error": "internal server error", "status": 500}, status=500
            )
        tracer.count(f"serve.status.{response.status}")
        return response

    async def __call__(
        self,
        scope: Dict[str, Any],
        receive: Callable[[], Awaitable[Dict[str, Any]]],
        send: Callable[[Dict[str, Any]], Awaitable[None]],
    ) -> None:
        """The ASGI 3 entry point."""
        if scope.get("type") != "http":
            return
        chunks: List[bytes] = []
        while True:
            message = await receive()
            if message["type"] != "http.request":
                break
            chunks.append(message.get("body") or b"")
            if not message.get("more_body"):
                break
        request = Request.from_scope(scope, b"".join(chunks))
        request.app = self
        request_id = self._next_request_id()
        request.state["request_id"] = request_id
        response = await self._dispatch(request)
        headers = response.header_list() + [("x-request-id", request_id)]
        await send(
            {
                "type": "http.response.start",
                "status": response.status,
                "headers": [
                    (name.encode("latin-1"), value.encode("latin-1"))
                    for name, value in headers
                ],
            }
        )
        await send(
            {
                "type": "http.response.body",
                "body": response.body,
                "more_body": False,
            }
        )


def _bind(middleware: Middleware, nxt: Handler) -> Handler:
    async def bound(request: Request) -> Response:
        return await middleware(request, nxt)

    return bound
