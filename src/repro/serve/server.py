"""A small asyncio HTTP/1.1 server for the bundled ASGI app.

No third-party server is available in this environment, so this module
speaks just enough HTTP/1.1 to run :mod:`repro.serve` for real:
request-line + header parsing, ``Content-Length`` bodies, keep-alive
with an idle timeout, and a bounded header/body size.  The app is never
trusted to be fast — the server only *awaits* it, and the app pushes
blocking work to its executor — and never trusted to be correct: any
exception escaping the app becomes a plain 500 and the connection
closes.

:class:`BackgroundServer` runs the same loop on a daemon thread for the
benchmark harness and smoke tests (``port=0`` picks a free port).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from .asgi import App

__all__ = ["serve_forever", "BackgroundServer"]

#: Read limits: a request line + headers block, and a JSON body.
_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024
#: Seconds an idle keep-alive connection is held open.
_IDLE_TIMEOUT = 30.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def _reason(status: int) -> str:
    return _REASONS.get(status, "Unknown")


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request; ``None`` on EOF/timeout/overflow/garbage."""
    try:
        blob = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=_IDLE_TIMEOUT
        )
    except (
        asyncio.IncompleteReadError,
        asyncio.LimitOverrunError,
        asyncio.TimeoutError,
        ConnectionError,
    ):
        return None
    try:
        head = blob.decode("latin-1")
        request_line, *header_lines = head.split("\r\n")
        method, target, _version = request_line.split(" ", 2)
    except ValueError:
        return None
    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        return None
    if length < 0 or length > _MAX_BODY_BYTES:
        return None
    body = b""
    if length:
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=_IDLE_TIMEOUT
            )
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionError,
        ):
            return None
    return method, target, headers, body


async def _run_app(
    app: App,
    method: str,
    target: str,
    headers: Dict[str, str],
    body: bytes,
    client: Tuple[str, int],
) -> Tuple[int, List[Tuple[bytes, bytes]], bytes]:
    """Drive the ASGI app for one request; always returns a response."""
    path, _, query = target.partition("?")
    scope = {
        "type": "http",
        "asgi": {"version": "3.0"},
        "http_version": "1.1",
        "method": method.upper(),
        "path": path,
        "raw_path": path.encode("latin-1"),
        "query_string": query.encode("latin-1"),
        "headers": [
            (name.encode("latin-1"), value.encode("latin-1"))
            for name, value in headers.items()
        ],
        "client": client,
    }
    messages: List[Dict[str, Any]] = []
    delivered = {"done": False}

    async def receive() -> Dict[str, Any]:
        if delivered["done"]:
            return {"type": "http.disconnect"}
        delivered["done"] = True
        return {"type": "http.request", "body": body, "more_body": False}

    async def send(message: Dict[str, Any]) -> None:
        messages.append(message)

    try:
        await app(scope, receive, send)
    except Exception:  # robust: the app already converts its own errors; this guards the server against a broken app so one connection failure cannot kill the accept loop
        return 500, [(b"content-type", b"application/json")], (
            b'{"error":"internal server error","status":500}'
        )
    status = 500
    response_headers: List[Tuple[bytes, bytes]] = [
        (b"content-type", b"application/json")
    ]
    chunks: List[bytes] = []
    for message in messages:
        if message["type"] == "http.response.start":
            status = int(message["status"])
            response_headers = list(message.get("headers") or [])
        elif message["type"] == "http.response.body":
            chunks.append(message.get("body") or b"")
    return status, response_headers, b"".join(chunks)


def _connection_handler(
    app: App,
) -> Callable[[asyncio.StreamReader, asyncio.StreamWriter], Awaitable[None]]:
    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername") or ("", 0)
        client = (str(peer[0]), int(peer[1])) if len(peer) >= 2 else ("", 0)
        try:
            while True:
                parsed = await _read_request(reader)
                if parsed is None:
                    break
                method, target, headers, body = parsed
                status, response_headers, payload = await _run_app(
                    app, method, target, headers, body, client
                )
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                head_lines = [
                    f"HTTP/1.1 {status} {_reason(status)}".encode("latin-1")
                ]
                for name, value in response_headers:
                    head_lines.append(name + b": " + value)
                head_lines.append(
                    b"content-length: " + str(len(payload)).encode("ascii")
                )
                head_lines.append(
                    b"connection: "
                    + (b"keep-alive" if keep_alive else b"close")
                )
                writer.write(b"\r\n".join(head_lines) + b"\r\n\r\n" + payload)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # a client hanging up mid-write is routine under load
        finally:
            try:
                writer.close()
            except Exception:  # robust: double-close on an already-reset socket raises on some platforms; shutdown must be quiet
                pass

    return handle


async def _serve(app: App, host: str, port: int,
                 started: Optional["_StartedCallback"] = None,
                 stop_event: Optional[asyncio.Event] = None) -> None:
    server = await asyncio.start_server(
        _connection_handler(app),
        host=host,
        port=port,
        limit=_MAX_HEADER_BYTES,
        backlog=1024,
    )
    sockets = server.sockets or []
    bound_port = sockets[0].getsockname()[1] if sockets else port
    if started is not None:
        started(bound_port)
    async with server:
        if stop_event is None:
            await server.serve_forever()
        else:
            await stop_event.wait()


_StartedCallback = Callable[[int], None]


def serve_forever(app: App, host: str = "127.0.0.1", port: int = 8151) -> None:
    """Run the server until interrupted (the CLI entry point)."""
    try:
        asyncio.run(_serve(app, host, port))
    except KeyboardInterrupt:
        pass  # Ctrl-C is the intended shutdown path for a foreground server


class BackgroundServer:
    """The same server on a daemon thread, for harnesses and tests.

    Use as a context manager; ``port=0`` binds an ephemeral port,
    exposed as :attr:`port` / :attr:`base_url` once ``__enter__``
    returns.
    """

    def __init__(
        self, app: App, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _main(self) -> None:
        async def runner() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()

            def started(bound_port: int) -> None:
                self.port = bound_port
                self._ready.set()

            await _serve(
                self.app, self.host, self.port,
                started=started, stop_event=self._stop,
            )

        asyncio.run(runner())

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-bg", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("background server failed to start")
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        return False
