"""Token-bucket rate limiting, bucketed per API key.

Each key gets a bucket of ``capacity`` tokens refilled at
``refill_per_second``; a request takes one token or is rejected with
429 and a ``Retry-After`` hint.  Buckets are keyed on the
authenticated API key (falling back to the client address, then to a
shared anonymous bucket), so one noisy client cannot starve the rest.

Time is read from the *monotonic* clock (reprolint R002 keeps wall
clocks out of library code, and a wall-clock step would mint or burn
tokens spuriously); the ``now`` seam exists so tests can drive time by
hand.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, Sequence, Tuple

from ..obs.tracer import get_tracer
from .asgi import Handler, HTTPError, Middleware, Request, Response

__all__ = ["TokenBucket", "RateLimiter", "rate_limit_middleware"]


class TokenBucket:
    """One client's budget: ``capacity`` burst, ``refill_per_second`` sustained."""

    def __init__(
        self,
        capacity: float,
        refill_per_second: float,
        now: Callable[[], float],
    ) -> None:
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self._now = now
        self.tokens = float(capacity)
        self.updated = now()

    def try_take(self) -> Tuple[bool, float]:
        """Take one token; returns ``(allowed, retry_after_seconds)``."""
        now = self._now()
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(
            self.capacity, self.tokens + elapsed * self.refill_per_second
        )
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        if self.refill_per_second <= 0:
            return False, float("inf")
        return False, (1.0 - self.tokens) / self.refill_per_second


class RateLimiter:
    """A lazily-populated map of key → :class:`TokenBucket`.

    Thread-safe: the server may run handlers on several event loops /
    executor threads (the in-process test client does).
    """

    def __init__(
        self,
        capacity: int,
        refill_per_second: float,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        self.capacity = capacity
        self.refill_per_second = refill_per_second
        self._now = now
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def check(self, key: str) -> Tuple[bool, float]:
        """Charge one request to ``key``'s bucket."""
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(
                    self.capacity, self.refill_per_second, self._now
                )
                self._buckets[key] = bucket
            return bucket.try_take()


def rate_limit_middleware(
    limiter: RateLimiter,
    exempt_paths: Sequence[str] = ("/healthz",),
) -> Middleware:
    """Build the middleware enforcing ``limiter`` on every request.

    Runs *inside* authentication, so buckets are per verified key and
    an unauthenticated probe burns no tokens.  The 429 carries an
    integral ``Retry-After`` (seconds, rounded up, capped at an hour).
    """
    exempt = frozenset(exempt_paths)

    async def middleware(request: Request, call_next: Handler) -> Response:
        if request.path in exempt:
            return await call_next(request)
        key = (
            request.state.get("api_key")
            or request.client
            or "anonymous"
        )
        allowed, retry_after = limiter.check(str(key))
        if not allowed:
            get_tracer().count("serve.rate_limited")
            wait = min(retry_after, 3600.0)
            raise HTTPError(
                429,
                "rate limit exceeded",
                headers=[("retry-after", str(max(1, math.ceil(wait))))],
            )
        return await call_next(request)

    return middleware
