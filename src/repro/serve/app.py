"""The app factory: settings in, wired ASGI application out.

Middleware order (outermost first): authentication, then rate
limiting — an unauthenticated probe is rejected before it can burn
rate-limit tokens, and buckets key on the *verified* API key.  The
request-id stamp lives in the :class:`~repro.serve.asgi.App` core so
even 401/429 rejections carry ``X-Request-ID``.

The executor created here is where every blocking
:meth:`~repro.serve.services.MarketService.execute` call runs; the
event loop itself only parses, validates and awaits.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from .asgi import App
from .auth import api_key_middleware
from .ratelimit import RateLimiter, rate_limit_middleware
from .routers import register_routes
from .services import MarketService
from .settings import ServeSettings

__all__ = ["create_app"]


def create_app(settings: Optional[ServeSettings] = None) -> App:
    """Build a ready-to-serve application from ``settings``."""
    resolved = settings if settings is not None else ServeSettings()
    app = App()
    app.state["settings"] = resolved
    app.state["service"] = MarketService(resolved)
    app.state["executor"] = ThreadPoolExecutor(
        max_workers=max(1, resolved.executor_workers),
        thread_name_prefix="repro-serve",
    )
    app.add_middleware(api_key_middleware(resolved.api_keys))
    app.add_middleware(
        rate_limit_middleware(
            RateLimiter(
                resolved.rate_capacity, resolved.rate_refill_per_second
            )
        )
    )
    register_routes(app)
    return app
