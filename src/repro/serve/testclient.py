"""An in-process ASGI test client (no sockets, no server).

Drives the app exactly like :mod:`repro.serve.server` does — same
scope shape, same receive/send protocol — but synchronously from test
code, one fresh event loop per request.  That makes it safe to call
from multiple threads at once, which is how ``tests/test_serve.py``
proves the single-flight generation contract.
"""

from __future__ import annotations

import asyncio
import json as _json
from typing import Any, Dict, List, Optional, Tuple

from .asgi import App, json_bytes

__all__ = ["TestResponse", "TestClient"]


class TestResponse:
    """Status, headers (lower-cased keys) and raw body of one response."""

    def __init__(
        self, status: int, headers: Dict[str, str], body: bytes
    ) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        return _json.loads(self.body.decode("utf-8"))


class TestClient:
    """Synchronous requests against an :class:`~repro.serve.asgi.App`."""

    __test__ = False  # not a pytest collectible despite the name

    def __init__(self, app: App) -> None:
        self.app = app

    def request(
        self,
        method: str,
        path: str,
        *,
        headers: Optional[Dict[str, str]] = None,
        json: Any = None,
        body: bytes = b"",
    ) -> TestResponse:
        """Issue one request; ``json=`` overrides ``body=``."""
        payload = json_bytes(json) if json is not None else body
        return asyncio.run(self._call(method, path, headers or {}, payload))

    def get(
        self, path: str, *, headers: Optional[Dict[str, str]] = None
    ) -> TestResponse:
        return self.request("GET", path, headers=headers)

    def post(
        self,
        path: str,
        *,
        headers: Optional[Dict[str, str]] = None,
        json: Any = None,
    ) -> TestResponse:
        return self.request("POST", path, headers=headers, json=json)

    async def _call(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> TestResponse:
        bare_path, _, query = path.partition("?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": bare_path,
            "raw_path": bare_path.encode("latin-1"),
            "query_string": query.encode("latin-1"),
            "headers": [
                (name.encode("latin-1"), value.encode("latin-1"))
                for name, value in headers.items()
            ],
            "client": ("testclient", 0),
        }
        messages: List[Dict[str, Any]] = []
        delivered = {"done": False}

        async def receive() -> Dict[str, Any]:
            if delivered["done"]:
                return {"type": "http.disconnect"}
            delivered["done"] = True
            return {"type": "http.request", "body": body, "more_body": False}

        async def send(message: Dict[str, Any]) -> None:
            messages.append(message)

        await self.app(scope, receive, send)
        status = 500
        header_map: Dict[str, str] = {}
        chunks: List[bytes] = []
        for message in messages:
            if message["type"] == "http.response.start":
                status = int(message["status"])
                for raw_name, raw_value in message.get("headers") or []:
                    header_map[raw_name.decode("latin-1").lower()] = (
                        raw_value.decode("latin-1")
                    )
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body") or b"")
        return TestResponse(status, header_map, b"".join(chunks))
