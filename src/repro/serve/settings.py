"""Configuration for the serving layer.

One frozen :class:`ServeSettings` value wires the whole app: auth keys,
rate-limit shape, cache/run-store roots, compute bounds and the
wall-clock seam.  The serving modules themselves never read the wall
clock (reprolint R002) — the CLI layer, which is allowed to, injects
``time.time`` via :attr:`ServeSettings.clock` so run records and
manifests can carry ``created_unix`` stamps; with ``clock=None`` those
stamps are simply omitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

__all__ = ["ServeSettings"]


@dataclass(frozen=True)
class ServeSettings:
    """Everything the app factory needs to build a server.

    ``api_keys`` empty means auth is *disabled* (development mode — the
    CLI refuses that combination unless ``--no-auth`` is explicit).
    ``rate_capacity`` is the per-key burst budget and
    ``rate_refill_per_second`` the sustained rate; both are enforced by
    :mod:`repro.serve.ratelimit`.  ``max_scale`` bounds how large a
    dataset one request may ask this process to generate.
    ``use_fork`` routes compute through a forked worker so per-request
    time limits are actually enforced (``SIGALRM`` needs a main
    thread — see ``RetryOutcome.enforced``); disabling it runs inline
    in the executor thread with advisory limits only.
    """

    api_keys: Tuple[str, ...] = ()
    rate_capacity: int = 30
    rate_refill_per_second: float = 10.0
    cache_dir: Optional[str] = None
    runs_dir: Optional[str] = None
    use_run_store: bool = True
    max_scale: float = 0.25
    timeout_seconds: Optional[float] = 300.0
    max_retries: int = 0
    retry_backoff: float = 0.0
    use_fork: bool = True
    executor_workers: int = 4
    #: Wall-clock seam for ``created_unix`` stamps; injected by the CLI
    #: (``time.time``), ``None`` in library/test contexts.
    clock: Optional[Callable[[], float]] = field(
        default=None, compare=False
    )
