"""API-key authentication middleware.

Clients authenticate with an ``X-API-Key`` header checked against the
configured key set in constant time (``hmac.compare_digest`` — a timing
side channel on key comparison would undermine the whole scheme).  The
authenticated key lands in ``request.state["api_key"]``, which is what
the rate limiter buckets on.  An empty key set disables authentication
(development mode); ``OPEN_PATHS`` (health probes) are always
reachable.
"""

from __future__ import annotations

import hmac
from typing import Sequence, Tuple

from .asgi import Handler, HTTPError, Middleware, Request, Response

__all__ = ["OPEN_PATHS", "api_key_middleware"]

#: Paths served without authentication: load-balancer health probes
#: must not need credentials.
OPEN_PATHS: Tuple[str, ...] = ("/healthz",)


def api_key_middleware(
    api_keys: Sequence[str],
    open_paths: Sequence[str] = OPEN_PATHS,
) -> Middleware:
    """Build the auth middleware for ``api_keys``.

    Raises :class:`~repro.serve.asgi.HTTPError` 401 for a missing or
    unknown key.  The comparison runs against *every* configured key
    regardless of early matches, keeping the work independent of which
    key (if any) matched.
    """
    keys = tuple(api_keys)
    open_set = frozenset(open_paths)

    async def middleware(request: Request, call_next: Handler) -> Response:
        if not keys or request.path in open_set:
            return await call_next(request)
        supplied = request.headers.get("x-api-key", "")
        matched = False
        for key in keys:
            if hmac.compare_digest(supplied, key):
                matched = True
        if not matched:
            raise HTTPError(401, "missing or invalid API key")
        request.state["api_key"] = supplied
        return await call_next(request)

    return middleware
