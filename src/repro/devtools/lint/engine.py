"""reprolint engine: collect sources, run rules, apply the baseline.

The engine is deliberately filesystem-light so tests can lint in-memory
snippets: a :class:`SourceFile` is just a repo-relative path, the source
text and its parsed AST, tagged with a *kind* ("src" / "tests") that
rules use for scoping.  ``collect_sources`` builds that list from a repo
root; ``lint_sources`` runs the rule set over any mapping of path ->
code, which is what the fixture tests use.

Two layers sit on top of the original per-file sweep:

* **AST index** — ``collect_sources`` parses through an optional
  :class:`~repro.devtools.lint.astindex.AstIndex`, so a warm run
  unpickles cached trees instead of re-parsing (the counters land in
  :class:`LintResult` for the CLI and the tests to assert on);
* **whole-program context** — when any selected rule sets
  ``requires_program`` the engine builds the shared
  :class:`~repro.devtools.lint.program.Program` (symbols, call graph,
  comment maps) once and hands it to each such rule's
  ``check_program``.

Rules are independent of each other, so ``jobs > 1`` fans them out
through :func:`repro.robust.parallel.forked_map` — the parsed sources
and the program index are built in the parent and inherited copy-on-
write by the forked workers, which return pickled findings.  Output is
sorted and deduplicated either way, so worker count never changes the
report.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

from .astindex import AstIndex
from .findings import Finding, load_baseline, split_by_baseline
from .program import Program, build_program
from .rules import Rule, all_rules

__all__ = [
    "SourceFile",
    "LintResult",
    "classify_path",
    "collect_sources",
    "lint_sources",
    "run_lint",
    "DEFAULT_BASELINE_NAME",
]

#: Baseline filename looked up at the lint root when none is given.
DEFAULT_BASELINE_NAME = "lint-baseline.txt"


@dataclass(frozen=True)
class SourceFile:
    """One parsed python file presented to the rules."""

    path: str        # repo-relative posix path
    text: str
    tree: ast.Module
    kind: str        # "src" | "tests" | "other"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)    # active
    suppressed: List[Finding] = field(default_factory=list)  # baselined
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)
    index_hits: int = 0      # AST-index cache hits (0 without an index)
    index_misses: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings or self.parse_errors else 0


def classify_path(path: str) -> str:
    """Map a repo-relative path to a rule scope kind."""
    first = path.split("/", 1)[0]
    if first == "src":
        return "src"
    if first == "tests":
        return "tests"
    return "other"


def _parse(path: str, text: str) -> ast.Module:
    return ast.parse(text, filename=path)


def lint_sources(
    files: Mapping[str, str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint an in-memory mapping of repo-relative path -> source text.

    Paths decide rule scope: give fixtures paths like
    ``"src/repro/example.py"`` or ``"tests/test_example.py"``.
    Whole-program rules see a program built from the ``src/`` fixtures.
    """
    sources = [
        SourceFile(path=path, text=text, tree=_parse(path, text),
                   kind=classify_path(path))
        for path, text in sorted(files.items())
    ]
    return _run_rules(sources, list(rules) if rules is not None else all_rules())


def _run_rules(
    sources: Sequence[SourceFile],
    rules: Sequence[Rule],
    jobs: int = 1,
) -> List[Finding]:
    program: Optional[Program] = None
    if any(rule.requires_program for rule in rules):
        program = build_program(sources)
    if jobs > 1 and len(rules) > 1:
        findings = _run_rules_parallel(sources, rules, program, jobs)
    else:
        findings = []
        for rule in rules:
            findings.extend(_run_one_rule(sources, rule, program))
    return sorted(set(findings), key=lambda f: (f.path, f.line, f.rule))


def _run_one_rule(
    sources: Sequence[SourceFile],
    rule: Rule,
    program: Optional[Program],
) -> List[Finding]:
    findings: List[Finding] = []
    for source in sources:
        if source.kind in rule.scope:
            findings.extend(rule.visit(source))
    if rule.requires_program and program is not None:
        findings.extend(rule.check_program(program))
    findings.extend(rule.finalize(sources))
    return findings


# Parallel rule execution: the parent process builds sources + program
# once, stashes them in module globals, and forks workers that inherit
# the state copy-on-write (same pattern as repro.report.experiments).
# Workers receive only a rule index and return pickled findings.
_PAR_SOURCES: Optional[Sequence[SourceFile]] = None
_PAR_RULES: Optional[Sequence[Rule]] = None
_PAR_PROGRAM: Optional[Program] = None


def _run_rule_by_index(index: int) -> List[Finding]:
    assert _PAR_SOURCES is not None and _PAR_RULES is not None
    return _run_one_rule(_PAR_SOURCES, _PAR_RULES[index], _PAR_PROGRAM)


def _run_rules_parallel(
    sources: Sequence[SourceFile],
    rules: Sequence[Rule],
    program: Optional[Program],
    jobs: int,
) -> List[Finding]:
    from ...robust.parallel import forked_map

    global _PAR_SOURCES, _PAR_RULES, _PAR_PROGRAM
    _PAR_SOURCES, _PAR_RULES, _PAR_PROGRAM = sources, rules, program
    try:
        per_rule = forked_map(
            _run_rule_by_index,
            list(range(len(rules))),
            workers=min(jobs, len(rules)),
            span="lint.rules",
        )
    finally:
        _PAR_SOURCES = _PAR_RULES = _PAR_PROGRAM = None
    findings: List[Finding] = []
    for batch in per_rule:
        findings.extend(batch)
    return findings


def collect_sources(
    root: str,
    paths: Optional[Sequence[str]] = None,
    index: Optional[AstIndex] = None,
) -> "tuple[List[SourceFile], List[str]]":
    """Parse every python file under ``root`` the linter should see.

    With no explicit ``paths``, lints ``src/`` and ``tests/`` under the
    root (either may be absent).  Explicit paths — files or directories,
    absolute or root-relative — restrict the sweep but keep the same
    kind classification, so rule scoping still works.  An ``index``
    replaces cold parses with content-addressed unpickles.  Returns the
    parsed sources plus any parse-error descriptions.
    """
    root = os.path.abspath(root)
    wanted: List[str] = []
    if paths:
        for entry in paths:
            absolute = entry if os.path.isabs(entry) else os.path.join(root, entry)
            if os.path.isdir(absolute):
                wanted.extend(_walk_py(absolute))
            else:
                wanted.append(absolute)
    else:
        for sub in ("src", "tests"):
            subdir = os.path.join(root, sub)
            if os.path.isdir(subdir):
                wanted.extend(_walk_py(subdir))

    parse = index.parse if index is not None else _parse
    sources: List[SourceFile] = []
    errors: List[str] = []
    seen: Set[str] = set()
    for absolute in sorted(wanted):
        if absolute in seen:
            continue
        seen.add(absolute)
        relative = os.path.relpath(absolute, root).replace(os.sep, "/")
        try:
            with open(absolute, "r", encoding="utf-8") as handle:
                text = handle.read()
            tree = parse(relative, text)
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{relative}: {exc}")
            continue
        sources.append(
            SourceFile(path=relative, text=text, tree=tree,
                       kind=classify_path(relative))
        )
    return sources, errors


def _walk_py(directory: str) -> List[str]:
    found: List[str] = []
    for dirpath, dirnames, filenames in os.walk(directory):
        dirnames[:] = [
            d for d in dirnames
            if d not in ("__pycache__", ".git") and not d.startswith(".")
        ]
        for filename in filenames:
            if filename.endswith(".py"):
                found.append(os.path.join(dirpath, filename))
    return found


def run_lint(
    root: str,
    paths: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
    *,
    index: Optional[AstIndex] = None,
    jobs: int = 1,
    only_paths: Optional[Set[str]] = None,
) -> LintResult:
    """Full lint pass over a repo checkout: collect, run rules, baseline.

    ``baseline_path=None`` uses ``<root>/lint-baseline.txt`` when it
    exists; pass ``""`` to ignore any baseline.  ``only_paths``
    restricts the *reported* findings to the given repo-relative paths
    (the ``--changed`` pre-commit mode) while whole-file collection and
    rule scoping stay unchanged.
    """
    sources, errors = collect_sources(root, paths, index=index)
    findings = _run_rules(
        sources,
        list(rules) if rules is not None else all_rules(),
        jobs=jobs,
    )
    if only_paths is not None:
        findings = [f for f in findings if f.path in only_paths]
    if baseline_path is None:
        candidate = os.path.join(root, DEFAULT_BASELINE_NAME)
        baseline_path = candidate if os.path.exists(candidate) else ""
    baseline = load_baseline(baseline_path) if baseline_path else set()
    active, suppressed = split_by_baseline(findings, baseline)
    return LintResult(
        findings=active,
        suppressed=suppressed,
        files_checked=len(sources),
        parse_errors=errors,
        index_hits=index.hits if index is not None else 0,
        index_misses=index.misses if index is not None else 0,
    )
