"""reprolint engine: collect sources, run rules, apply the baseline.

The engine is deliberately filesystem-light so tests can lint in-memory
snippets: a :class:`SourceFile` is just a repo-relative path, the source
text and its parsed AST, tagged with a *kind* ("src" / "tests") that
rules use for scoping.  ``collect_sources`` builds that list from a repo
root; ``lint_sources`` runs the rule set over any mapping of path ->
code, which is what the fixture tests use.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

from .findings import Finding, load_baseline, split_by_baseline
from .rules import Rule, all_rules

__all__ = [
    "SourceFile",
    "LintResult",
    "classify_path",
    "collect_sources",
    "lint_sources",
    "run_lint",
    "DEFAULT_BASELINE_NAME",
]

#: Baseline filename looked up at the lint root when none is given.
DEFAULT_BASELINE_NAME = "lint-baseline.txt"


@dataclass(frozen=True)
class SourceFile:
    """One parsed python file presented to the rules."""

    path: str        # repo-relative posix path
    text: str
    tree: ast.Module
    kind: str        # "src" | "tests" | "other"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)    # active
    suppressed: List[Finding] = field(default_factory=list)  # baselined
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings or self.parse_errors else 0


def classify_path(path: str) -> str:
    """Map a repo-relative path to a rule scope kind."""
    first = path.split("/", 1)[0]
    if first == "src":
        return "src"
    if first == "tests":
        return "tests"
    return "other"


def _parse(path: str, text: str) -> ast.Module:
    return ast.parse(text, filename=path)


def lint_sources(
    files: Mapping[str, str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint an in-memory mapping of repo-relative path -> source text.

    Paths decide rule scope: give fixtures paths like
    ``"src/repro/example.py"`` or ``"tests/test_example.py"``.
    """
    sources = [
        SourceFile(path=path, text=text, tree=_parse(path, text),
                   kind=classify_path(path))
        for path, text in sorted(files.items())
    ]
    return _run_rules(sources, list(rules) if rules is not None else all_rules())


def _run_rules(
    sources: Sequence[SourceFile], rules: Sequence[Rule]
) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        for source in sources:
            if source.kind in rule.scope:
                findings.extend(rule.visit(source))
        findings.extend(rule.finalize(sources))
    return sorted(set(findings), key=lambda f: (f.path, f.line, f.rule))


def collect_sources(
    root: str, paths: Optional[Sequence[str]] = None
) -> "tuple[List[SourceFile], List[str]]":
    """Parse every python file under ``root`` the linter should see.

    With no explicit ``paths``, lints ``src/`` and ``tests/`` under the
    root (either may be absent).  Explicit paths — files or directories,
    absolute or root-relative — restrict the sweep but keep the same
    kind classification, so rule scoping still works.  Returns the
    parsed sources plus any parse-error descriptions.
    """
    root = os.path.abspath(root)
    wanted: List[str] = []
    if paths:
        for entry in paths:
            absolute = entry if os.path.isabs(entry) else os.path.join(root, entry)
            if os.path.isdir(absolute):
                wanted.extend(_walk_py(absolute))
            else:
                wanted.append(absolute)
    else:
        for sub in ("src", "tests"):
            subdir = os.path.join(root, sub)
            if os.path.isdir(subdir):
                wanted.extend(_walk_py(subdir))

    sources: List[SourceFile] = []
    errors: List[str] = []
    seen: Set[str] = set()
    for absolute in sorted(wanted):
        if absolute in seen:
            continue
        seen.add(absolute)
        relative = os.path.relpath(absolute, root).replace(os.sep, "/")
        try:
            with open(absolute, "r", encoding="utf-8") as handle:
                text = handle.read()
            tree = _parse(relative, text)
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{relative}: {exc}")
            continue
        sources.append(
            SourceFile(path=relative, text=text, tree=tree,
                       kind=classify_path(relative))
        )
    return sources, errors


def _walk_py(directory: str) -> List[str]:
    found: List[str] = []
    for dirpath, dirnames, filenames in os.walk(directory):
        dirnames[:] = [
            d for d in dirnames
            if d not in ("__pycache__", ".git") and not d.startswith(".")
        ]
        for filename in filenames:
            if filename.endswith(".py"):
                found.append(os.path.join(dirpath, filename))
    return found


def run_lint(
    root: str,
    paths: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Full lint pass over a repo checkout: collect, run rules, baseline.

    ``baseline_path=None`` uses ``<root>/lint-baseline.txt`` when it
    exists; pass ``""`` to ignore any baseline.
    """
    sources, errors = collect_sources(root, paths)
    findings = _run_rules(sources, list(rules) if rules is not None else all_rules())
    if baseline_path is None:
        candidate = os.path.join(root, DEFAULT_BASELINE_NAME)
        baseline_path = candidate if os.path.exists(candidate) else ""
    baseline = load_baseline(baseline_path) if baseline_path else set()
    active, suppressed = split_by_baseline(findings, baseline)
    return LintResult(
        findings=active,
        suppressed=suppressed,
        files_checked=len(sources),
        parse_errors=errors,
    )
