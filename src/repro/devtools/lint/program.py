"""Whole-program view for reprolint: symbols, call graph, dataflow.

The single-file rules (R001–R009) see one AST at a time; the
interprocedural rules (R010–R013) need to know *who calls whom* and
*where values flow*.  This module builds that view once per lint run
from the already-parsed sources (no re-parsing — the engine shares the
AST index trees):

* a **symbol table** per module: functions, classes (with methods,
  dataclass fields, properties) and an import alias map with relative
  imports resolved to absolute dotted names;
* a **call graph** with three edge kinds — *resolved* (the callee is a
  known function/method: direct names, imported names, ``self.m()``,
  ``Cls(...).m()`` and ``v = Cls(...); v.m()`` patterns), *callback*
  (a known function passed as an argument, e.g. the worker function
  handed to ``forked_map``), and *fuzzy* (unresolved attribute calls
  matched by terminal name, used only to over-approximate
  reachability, never to propagate values);
* a **config taint** analysis: starting from parameters annotated with
  a config dataclass, ``ConfigClass(...)`` constructions and
  ``.config`` attribute chains, it propagates config values through
  assignments, tuple unpacking and resolved calls to a fixpoint, and
  records every ``<config>.<attr>`` read with its location;
* a **comment map** per file (real ``tokenize`` comments, so strings
  and docstrings that merely *mention* a marker never count).

Everything is best-effort static analysis: unresolvable dynamic calls
degrade to fuzzy edges and missing taint, which the rules treat
conservatively.  The program is built from ``src/`` sources only —
tests exercise the rules by handing ``lint_sources`` fixture modules
with ``src/...`` paths.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "AttrRead",
    "ClassInfo",
    "ConfigTaint",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "build_program",
    "module_name_of",
]

#: Attribute names that conventionally hold the simulation config on
#: result/simulator objects (``self.config``, ``result.config``).  An
#: attribute access ending in one of these is treated as producing a
#: config value.
CONFIG_ATTR_NAMES = frozenset({"config", "_config"})


def module_name_of(path: str) -> Optional[str]:
    """Dotted module name for a repo-relative ``src/`` path.

    ``src/repro/synth/cache.py`` -> ``repro.synth.cache``;
    ``src/repro/core/__init__.py`` -> ``repro.core``.  Non-``src``
    paths return ``None``.
    """
    if not path.startswith("src/") or not path.endswith(".py"):
        return None
    parts = path[len("src/"):-len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str                 # e.g. "repro.synth.engine.run_engine"
    name: str
    module: str
    source: "SourceFile"          # noqa: F821
    node: ast.AST                 # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None     # owning class qualname for methods
    params: List[str] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ClassInfo:
    """One class definition with its members."""

    qualname: str
    name: str
    module: str
    source: "SourceFile"          # noqa: F821
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    fields: List[str] = field(default_factory=list)      # AnnAssign names
    properties: Set[str] = field(default_factory=set)
    decorators: Set[str] = field(default_factory=set)    # terminal names

    @property
    def is_dataclass(self) -> bool:
        return "dataclass" in self.decorators


@dataclass
class ModuleInfo:
    """Per-module symbol table."""

    name: str
    source: "SourceFile"          # noqa: F821
    imports: Dict[str, str] = field(default_factory=dict)  # alias -> dotted
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


@dataclass(frozen=True)
class AttrRead:
    """One ``<config>.<attr>`` read site."""

    attr: str
    func: str                     # enclosing function qualname
    path: str
    node: ast.AST


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted_chain(node: ast.AST) -> Tuple[str, ...]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _param_names(node: ast.AST) -> List[str]:
    args = node.args
    names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    names.extend(a.arg for a in args.kwonlyargs)
    return names


def _comment_map(text: str) -> Dict[int, str]:
    """Line -> comment text, from real COMMENT tokens only."""
    comments: Dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


class Program:
    """The whole-program index rules query."""

    def __init__(self, sources: Sequence["SourceFile"]) -> None:  # noqa: F821
        self.sources = [s for s in sources if s.kind == "src"]
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.by_name: Dict[str, List[str]] = {}        # bare fn name -> quals
        self.class_by_name: Dict[str, List[str]] = {}
        #: caller qualname -> resolved callee qualnames
        self.edges: Dict[str, Set[str]] = {}
        #: caller qualname -> functions passed as arguments (callbacks)
        self.callback_edges: Dict[str, Set[str]] = {}
        #: caller qualname -> terminal names of unresolved calls
        self.fuzzy_calls: Dict[str, Set[str]] = {}
        #: caller qualname -> list of (call node, callee qualname)
        self.calls: Dict[str, List[Tuple[ast.Call, str]]] = {}
        self.comments: Dict[str, Dict[int, str]] = {}
        self._index(self.sources)
        self._link()

    # ------------------------------------------------------------- #
    # symbol table
    # ------------------------------------------------------------- #

    def _index(self, sources) -> None:
        for source in sources:
            module = module_name_of(source.path)
            if module is None:
                continue
            info = ModuleInfo(name=module, source=source)
            info.imports = self._imports_of(module, source)
            for node in source.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{module}.{node.name}"
                    fn = FunctionInfo(
                        qualname=qual, name=node.name, module=module,
                        source=source, node=node, params=_param_names(node),
                    )
                    info.functions[node.name] = fn
                    self.functions[qual] = fn
                elif isinstance(node, ast.ClassDef):
                    self._index_class(info, source, node)
            self.modules[module] = info
            self.comments[source.path] = _comment_map(source.text)
        for qual, fn in self.functions.items():
            self.by_name.setdefault(fn.name, []).append(qual)
        for qual, cls in self.classes.items():
            self.class_by_name.setdefault(cls.name, []).append(qual)

    def _index_class(self, info: ModuleInfo, source, node: ast.ClassDef) -> None:
        qual = f"{info.name}.{node.name}"
        cls = ClassInfo(qualname=qual, name=node.name, module=info.name,
                        source=source, node=node)
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _terminal(target)
            if name:
                cls.decorators.add(name)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mqual = f"{qual}.{item.name}"
                fn = FunctionInfo(
                    qualname=mqual, name=item.name, module=info.name,
                    source=source, node=item, cls=qual,
                    params=_param_names(item),
                )
                cls.methods[item.name] = fn
                self.functions[mqual] = fn
                for deco in item.decorator_list:
                    if _terminal(deco) == "property":
                        cls.properties.add(item.name)
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                cls.fields.append(item.target.id)
        info.classes[node.name] = cls
        self.classes[qual] = cls

    def _imports_of(self, module: str, source) -> Dict[str, str]:
        imports: Dict[str, str] = {}
        is_package = source.path.endswith("/__init__.py")
        package = module.split(".") if is_package else module.split(".")[:-1]
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        imports[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        imports[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = package[: len(package) - (node.level - 1)]
                else:
                    base = []
                prefix = list(base)
                if node.module:
                    prefix.extend(node.module.split("."))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports[local] = ".".join(prefix + [alias.name])
        return imports

    # ------------------------------------------------------------- #
    # call graph
    # ------------------------------------------------------------- #

    def _link(self) -> None:
        for fn in list(self.functions.values()):
            self._link_function(fn)

    def _resolve_symbol(self, mod: ModuleInfo, name: str) -> Optional[str]:
        """A bare name in ``mod`` -> function/class qualname, if known."""
        if name in mod.functions:
            return mod.functions[name].qualname
        if name in mod.classes:
            return mod.classes[name].qualname
        target = mod.imports.get(name)
        if target is not None:
            if target in self.functions or target in self.classes:
                return target
        return None

    def resolve_class_of_call(self, mod: ModuleInfo, call: ast.Call
                              ) -> Optional[str]:
        """``Cls(...)`` -> the class qualname, when Cls is known."""
        if isinstance(call.func, ast.Name):
            target = self._resolve_symbol(mod, call.func.id)
            if target in self.classes:
                return target
        return None

    def _link_function(self, fn: FunctionInfo) -> None:
        mod = self.modules[fn.module]
        resolved: Set[str] = set()
        callbacks: Set[str] = set()
        fuzzy: Set[str] = set()
        callpairs: List[Tuple[ast.Call, str]] = []
        local_classes: Dict[str, str] = {}

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                cls_qual = self.resolve_class_of_call(mod, node.value)
                if cls_qual:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            local_classes[target.id] = cls_qual

        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            target = self._resolve_call(fn, mod, node, local_classes)
            if target is not None:
                resolved.add(target)
                callpairs.append((node, target))
            else:
                name = _terminal(node.func)
                if name:
                    fuzzy.add(name)
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name):
                    cb = self._resolve_symbol(mod, arg.id)
                    if cb in self.functions:
                        callbacks.add(cb)

        self.edges[fn.qualname] = resolved
        self.callback_edges[fn.qualname] = callbacks
        self.fuzzy_calls[fn.qualname] = fuzzy
        self.calls[fn.qualname] = callpairs

    def _class_member(self, cls_qual: str, name: str) -> Optional[str]:
        cls = self.classes.get(cls_qual)
        if cls and name in cls.methods:
            return cls.methods[name].qualname
        return None

    def _resolve_call(self, fn: FunctionInfo, mod: ModuleInfo,
                      call: ast.Call, local_classes: Dict[str, str]
                      ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            target = self._resolve_symbol(mod, func.id)
            if target in self.functions:
                return target
            if target in self.classes:
                return self._class_member(target, "__init__") or target
            return None
        if isinstance(func, ast.Attribute):
            # self.m()
            if isinstance(func.value, ast.Name):
                base = func.value.id
                if base == "self" and fn.cls:
                    member = self._class_member(fn.cls, func.attr)
                    if member:
                        return member
                if base in local_classes:   # v = Cls(...); v.m()
                    member = self._class_member(local_classes[base], func.attr)
                    if member:
                        return member
                sym = self._resolve_symbol(mod, base)
                if sym in self.classes:     # Cls.m(...) classmethod style
                    member = self._class_member(sym, func.attr)
                    if member:
                        return member
            # Cls(...).m()
            if isinstance(func.value, ast.Call):
                cls_qual = self.resolve_class_of_call(mod, func.value)
                if cls_qual:
                    member = self._class_member(cls_qual, func.attr)
                    if member:
                        return member
            # module alias chains: parallel.forked_map(...), pkg.mod.f(...)
            chain = _dotted_chain(func)
            if chain:
                target = mod.imports.get(chain[0])
                if target:
                    candidate = ".".join([target] + list(chain[1:]))
                    if candidate in self.functions:
                        return candidate
                    if candidate in self.classes:
                        return (self._class_member(candidate, "__init__")
                                or candidate)
        return None

    # ------------------------------------------------------------- #
    # queries
    # ------------------------------------------------------------- #

    def reachable_from(self, entries: Iterable[str],
                       fuzzy: bool = True) -> Set[str]:
        """Transitive closure over resolved + callback (+ fuzzy) edges.

        Fuzzy edges match unresolved attribute calls by bare terminal
        name, deliberately over-approximating — for rules like R010 a
        too-large reachable set only widens the checked region.
        """
        seen: Set[str] = set()
        queue = [q for q in entries if q in self.functions
                 or q in self.classes]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            targets: Set[str] = set()
            targets |= self.edges.get(current, set())
            targets |= self.callback_edges.get(current, set())
            if fuzzy:
                for name in self.fuzzy_calls.get(current, ()):
                    targets.update(self.by_name.get(name, ()))
            for target in targets:
                if target not in seen:
                    queue.append(target)
        return seen

    def comment_at(self, path: str, lineno: int) -> str:
        """Comment text on ``lineno`` of ``path`` ('' when none)."""
        return self.comments.get(path, {}).get(lineno, "")

    def has_marker(self, path: str, lineno: int, marker: str) -> bool:
        """True when a marker comment sits on ``lineno`` or just above."""
        return (marker in self.comment_at(path, lineno)
                or marker in self.comment_at(path, lineno - 1))


def build_program(sources: Sequence["SourceFile"]) -> Program:  # noqa: F821
    """Build the whole-program index from parsed sources."""
    return Program(sources)


# ----------------------------------------------------------------- #
# config taint
# ----------------------------------------------------------------- #


class ConfigTaint:
    """Propagate config-dataclass values through the call graph.

    Seeds: parameters annotated with a config class (directly, via
    ``Optional[...]``, string annotations, or inside a ``Tuple[...]``
    position), ``ConfigClass(...)`` constructor calls, ``self`` inside
    config-class methods, and ``.config`` attribute chains.  Values
    propagate through assignments, ``or``-defaults, conditional
    expressions, tuple unpacking and *resolved* call edges (positional
    and keyword arguments) to a fixpoint.  ``reads`` then lists every
    ``<config>.<attr>`` access with its enclosing function.
    """

    _MAX_ROUNDS = 10

    def __init__(self, program: Program,
                 config_classes: Iterable[str]) -> None:
        self.program = program
        #: bare class names treated as configs
        self.config_classes = set(config_classes)
        #: function qualname -> tainted local names
        self.tainted: Dict[str, Set[str]] = {}
        #: function qualname -> container locals -> config positions
        self.containers: Dict[str, Dict[str, Set[int]]] = {}
        self.reads: List[AttrRead] = []
        self._run()

    # -- seeding ---------------------------------------------------- #

    def _annotation_is_config(self, ann: Optional[ast.AST]) -> bool:
        if ann is None:
            return False
        for node in ast.walk(ann):
            name = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                name = node.value.strip("'\"")
            if name in self.config_classes:
                return True
        return False

    def _tuple_positions(self, ann: Optional[ast.AST]) -> Set[int]:
        """Config positions inside a ``Tuple[...]``-style annotation."""
        if not isinstance(ann, ast.Subscript):
            return set()
        if _terminal(ann.value) not in ("Tuple", "tuple"):
            return set()
        inner = ann.slice
        if isinstance(inner, ast.Index):  # py3.8 compat in old pickles
            inner = inner.value           # pragma: no cover
        if not isinstance(inner, ast.Tuple):
            return set()
        return {
            i for i, elt in enumerate(inner.elts)
            if self._annotation_is_config(elt)
        }

    def _seed_function(self, fn: FunctionInfo) -> None:
        tainted = self.tainted.setdefault(fn.qualname, set())
        containers = self.containers.setdefault(fn.qualname, {})
        node = fn.node
        args = node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            if self._annotation_is_config(arg.annotation):
                positions = self._tuple_positions(arg.annotation)
                if positions:
                    containers[arg.arg] = set(positions)
                else:
                    tainted.add(arg.arg)
        if fn.cls:
            cls = self.program.classes.get(fn.cls)
            if cls and cls.name in self.config_classes:
                tainted.add("self")

    # -- expression classification ---------------------------------- #

    def _is_config_expr(self, fn: FunctionInfo, expr: ast.AST) -> bool:
        tainted = self.tainted.get(fn.qualname, set())
        if isinstance(expr, ast.Name):
            return expr.id in tainted
        if isinstance(expr, ast.Attribute):
            if expr.attr in CONFIG_ATTR_NAMES:
                return True
            return False
        if isinstance(expr, ast.Call):
            mod = self.program.modules.get(fn.module)
            if mod is not None:
                name = _terminal(expr.func)
                if name in self.config_classes:
                    return True
                cls_qual = self.program.resolve_class_of_call(mod, expr)
                if cls_qual and self.program.classes[cls_qual].name in \
                        self.config_classes:
                    return True
            return False
        if isinstance(expr, ast.BoolOp):
            return any(self._is_config_expr(fn, v) for v in expr.values)
        if isinstance(expr, ast.IfExp):
            return (self._is_config_expr(fn, expr.body)
                    or self._is_config_expr(fn, expr.orelse))
        if isinstance(expr, ast.NamedExpr):
            return self._is_config_expr(fn, expr.value)
        return False

    # -- per-function propagation ----------------------------------- #

    def _propagate_function(self, fn: FunctionInfo) -> bool:
        """One pass of local assignment propagation; True on change."""
        changed = False
        tainted = self.tainted.setdefault(fn.qualname, set())
        containers = self.containers.setdefault(fn.qualname, {})
        for node in ast.walk(fn.node):
            if isinstance(node, ast.AnnAssign):
                if (isinstance(node.target, ast.Name)
                        and self._annotation_is_config(node.annotation)
                        and node.target.id not in tainted):
                    tainted.add(node.target.id)
                    changed = True
                continue
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if (self._is_config_expr(fn, value)
                            and target.id not in tainted):
                        tainted.add(target.id)
                        changed = True
                    if (isinstance(value, ast.Name)
                            and value.id in containers
                            and target.id not in containers):
                        containers[target.id] = set(containers[value.id])
                        changed = True
                elif isinstance(target, ast.Tuple):
                    positions: Set[int] = set()
                    if isinstance(value, ast.Name) and value.id in containers:
                        positions = containers[value.id]
                    for i, elt in enumerate(target.elts):
                        if not isinstance(elt, ast.Name):
                            continue
                        hit = i in positions
                        if (isinstance(value, ast.Tuple)
                                and i < len(value.elts)
                                and self._is_config_expr(fn, value.elts[i])):
                            hit = True
                        if hit and elt.id not in tainted:
                            tainted.add(elt.id)
                            changed = True
        return changed

    # -- interprocedural propagation -------------------------------- #

    def _call_argument_seeds(self, fn: FunctionInfo) -> bool:
        """Push tainted arguments into resolved callees' parameters."""
        changed = False
        containers = self.containers.get(fn.qualname, {})
        for call, target in self.program.calls.get(fn.qualname, ()):
            callee = self.program.functions.get(target)
            if callee is None:
                continue
            params = list(callee.params)
            if callee.is_method and params and params[0] in ("self", "cls"):
                params = params[1:]
            callee_tainted = self.tainted.setdefault(callee.qualname, set())
            callee_containers = self.containers.setdefault(
                callee.qualname, {}
            )
            for i, arg in enumerate(call.args):
                if i >= len(params) or isinstance(arg, ast.Starred):
                    break
                if self._is_config_expr(fn, arg):
                    if params[i] not in callee_tainted:
                        callee_tainted.add(params[i])
                        changed = True
                if isinstance(arg, ast.Name) and arg.id in containers:
                    if params[i] not in callee_containers:
                        callee_containers[params[i]] = set(
                            containers[arg.id]
                        )
                        changed = True
            for kw in call.keywords:
                if kw.arg is None:
                    continue
                if kw.arg in callee.params and self._is_config_expr(
                    fn, kw.value
                ):
                    if kw.arg not in callee_tainted:
                        callee_tainted.add(kw.arg)
                        changed = True
        return changed

    # -- driver ----------------------------------------------------- #

    def _run(self) -> None:
        for fn in self.program.functions.values():
            self._seed_function(fn)
        for _ in range(self._MAX_ROUNDS):
            changed = False
            for fn in self.program.functions.values():
                # two local passes: ast.walk order is not execution order
                if self._propagate_function(fn):
                    changed = True
                    self._propagate_function(fn)
                if self._call_argument_seeds(fn):
                    changed = True
            if not changed:
                break
        for fn in self.program.functions.values():
            self._collect_reads(fn)

    def _collect_reads(self, fn: FunctionInfo) -> None:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr in CONFIG_ATTR_NAMES:
                continue  # the access *produces* a config, not a field
            if node.attr.startswith("__"):
                continue
            if self._is_config_expr(fn, node.value):
                self.reads.append(AttrRead(
                    attr=node.attr, func=fn.qualname,
                    path=fn.source.path, node=node,
                ))
