"""reprolint: project-specific static analysis for the reproduction.

An :mod:`ast`-walking pass over ``src/`` and ``tests/`` enforcing the
invariants the reproduction's credibility rests on — invariants no
generic linter knows about:

====  ======================  ==============================================
id    name                    invariant
====  ======================  ==============================================
R001  unseeded-rng            randomness flows through an explicit
                              ``numpy.random.Generator`` (bit-determinism
                              per seed)
R002  wall-clock-in-library   no ``time.time()`` / ``datetime.now()``
                              outside ``cli.py`` and ``benchmarks/``
R003  fast-path-parity        every public ``fast=`` kernel has a
                              ``fast=False`` parity test
R004  object-loop-in-kernel   columnar kernels never loop over
                              ``.contracts`` / ``.posts`` / ``.users``
R005  era-literal             era-boundary dates come only from
                              :mod:`repro.core.eras`
R006  float-equality          tests never compare floats with ``==``
R007  undocumented-public-    every public module carries a docstring
      module
R008  broad-except-           ``except Exception`` needs a ``# robust:``
      unjustified             justification comment
R009  full-store-materialize  library code never materialises a whole
                              partitioned store without ``# partition:``
====  ======================  ==============================================

On top of the per-file rules sits a whole-program pass (see
:mod:`repro.devtools.lint.program` for the shared AST index, call graph
and config-dataflow layer) with interprocedural rules:

====  ======================  ==============================================
R010  cache-key-completeness  every config field read reachable from a
                              generation entry point is part of the
                              structural cache fingerprint
R011  fork-unsafe-capture     closures shipped through ``forked_map``
                              never capture locks, open file handles,
                              stores or tracers
R012  schema-consistency      column names and dtypes at every producer
                              and consumer match
                              :data:`repro.core.schema.COLUMN_SCHEMA`
R013  rng-provenance          no unseeded ``default_rng()`` flows out of
                              helpers into library code
R014  stale-justification     justification comments must still anchor
                              to the construct they excuse
====  ======================  ==============================================

Run it with ``python -m repro lint`` (``--format json`` / ``sarif`` for
machines, ``--explain R003`` for the rationale behind one rule,
``--changed`` for the sub-second pre-commit pass, ``--no-program`` to
skip the interprocedural rules).  Grandfathered findings live in
``lint-baseline.txt`` at the repo root, regenerated with
``--write-baseline``.  Full rule documentation: ``docs/linting.md``.
"""

from __future__ import annotations

from .engine import (
    DEFAULT_BASELINE_NAME,
    LintResult,
    SourceFile,
    collect_sources,
    lint_sources,
    run_lint,
)
from .astindex import DEFAULT_INDEX_DIR, AstIndex
from .findings import Finding, load_baseline, save_baseline
from .program import Program, build_program
from .rules import RULES, Rule, all_rules, rule_by_id
from .sarif import render_sarif

__all__ = [
    "AstIndex",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_INDEX_DIR",
    "Finding",
    "LintResult",
    "Program",
    "RULES",
    "Rule",
    "SourceFile",
    "all_rules",
    "build_program",
    "collect_sources",
    "lint_sources",
    "load_baseline",
    "render_sarif",
    "rule_by_id",
    "run_lint",
    "save_baseline",
]
