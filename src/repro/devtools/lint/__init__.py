"""reprolint: project-specific static analysis for the reproduction.

An :mod:`ast`-walking pass over ``src/`` and ``tests/`` enforcing the
invariants the reproduction's credibility rests on — invariants no
generic linter knows about:

====  ======================  ==============================================
id    name                    invariant
====  ======================  ==============================================
R001  unseeded-rng            randomness flows through an explicit
                              ``numpy.random.Generator`` (bit-determinism
                              per seed)
R002  wall-clock-in-library   no ``time.time()`` / ``datetime.now()``
                              outside ``cli.py`` and ``benchmarks/``
R003  fast-path-parity        every public ``fast=`` kernel has a
                              ``fast=False`` parity test
R004  object-loop-in-kernel   columnar kernels never loop over
                              ``.contracts`` / ``.posts`` / ``.users``
R005  era-literal             era-boundary dates come only from
                              :mod:`repro.core.eras`
R006  float-equality          tests never compare floats with ``==``
====  ======================  ==============================================

Run it with ``python -m repro lint`` (``--format json`` for machines,
``--explain R003`` for the rationale behind one rule).  Grandfathered
findings live in ``lint-baseline.txt`` at the repo root, regenerated
with ``--write-baseline``.
"""

from __future__ import annotations

from .engine import (
    DEFAULT_BASELINE_NAME,
    LintResult,
    SourceFile,
    collect_sources,
    lint_sources,
    run_lint,
)
from .findings import Finding, load_baseline, save_baseline
from .rules import RULES, Rule, all_rules, rule_by_id

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "SourceFile",
    "all_rules",
    "collect_sources",
    "lint_sources",
    "load_baseline",
    "rule_by_id",
    "run_lint",
    "save_baseline",
]
