"""Whole-program reprolint rules (R010–R014).

These rules run on the :class:`~repro.devtools.lint.program.Program`
index — call graph plus dataflow — instead of one file at a time, so
they can see the bugs single-file matching structurally cannot: a
config field that silently stopped participating in the cache
fingerprint (R010), a closure shipping a lock or mmap handle through a
fork boundary (R011), a producer and a consumer disagreeing about a
column name or dtype (R012), and an unseeded ``Generator`` laundered
through a helper function (R013).  R014 closes the suppression
loophole: every justification marker comment must still sit on a line
that actually triggers its rule.

Justification markers follow the R008/R009 convention — the comment
goes on the triggering line or the line directly above it:

* ``# cache-key:`` on a fingerprint field exclusion (R010)
* ``# fork-safe:`` on a flagged fork/closure site (R011)
* ``# schema:`` on a deliberate off-registry column name (R012)
* ``# rng:`` on a deliberate unseeded generator (R013)
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding
from .program import (
    ConfigTaint,
    FunctionInfo,
    Program,
    _dotted_chain,
    _terminal,
)
from .rules import Rule

__all__ = [
    "_assign_targets",
    "ProgramRule",
    "CacheKeyCompleteness",
    "ForkSafety",
    "SchemaConsistency",
    "RngProvenance",
    "StaleJustification",
    "PROGRAM_RULES",
]


def _assign_targets(node: ast.AST) -> "Tuple[Set[str], Optional[ast.AST]]":
    """Bound names and value of an Assign/AnnAssign statement."""
    if isinstance(node, ast.Assign):
        return (
            {t.id for t in node.targets if isinstance(t, ast.Name)},
            node.value,
        )
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        return {node.target.id}, node.value
    return set(), None


class ProgramRule(Rule):
    """Base for rules that run once over the whole-program index."""

    requires_program = True

    def check_program(self, program: Program) -> Iterator[Finding]:
        return iter(())

    def finding_at(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            severity=self.severity,
            message=message,
        )


# --------------------------------------------------------------------- #
# R010 cache-key-completeness
# --------------------------------------------------------------------- #


class CacheKeyCompleteness(ProgramRule):
    """R010 cache-key-completeness: every config field that influences
    generated output must participate in the structural cache
    fingerprint.

    The dataset cache keys entries by ``config_fingerprint`` — a hash
    over the config dataclass minus the ``NON_STRUCTURAL_FIELDS``
    exclusions.  If a field is excluded (or popped from the payload)
    while generation code still *reads* it, two different markets can
    silently share one cache entry: exactly the class of bug the
    ``n_cohorts`` and worker-count knobs of PR 6/7 had to dodge by
    hand.  This rule taints every ``*Config`` dataclass value flowing
    from the generation entry points (``run_engine``, the cached
    loaders, ``stream_partitioned``, the simulator ``run`` methods),
    collects each field read reachable from them, and fails when a
    read field is excluded from the fingerprint without a
    ``# cache-key:`` justification on the exclusion line.  Reads of
    attributes that are neither fields, properties nor methods of any
    config class are flagged too — they are typos the type checker may
    miss on dynamic paths.

    The ``repro.runs`` orchestrators (``execute_run``,
    ``execute_stream_run``, ``resume_run``) are entry points too: a
    resumed run must land on the same cached dataset as the original
    invocation, which only holds while every config field they cause to
    be read is covered by the fingerprint that run ids and cache keys
    are both derived from.
    """

    id = "R010"
    name = "cache-key-completeness"
    scope = ()

    #: Module-level functions treated as generation entry points.
    _ENTRY_NAMES = {
        "run_engine", "cached_generate", "cached_partitioned_store",
        "stream_partitioned", "generate_market",
        # repro.runs orchestration: resume re-derives the dataset from
        # the persisted RunContext, so its config reads must be keyed.
        "execute_run", "execute_stream_run", "resume_run",
    }

    def _entries(self, program: Program) -> Set[str]:
        entries: Set[str] = set()
        for qual, fn in program.functions.items():
            if fn.cls is None and fn.name in self._ENTRY_NAMES:
                entries.add(qual)
            elif fn.cls is not None and fn.name == "run":
                cls = program.classes.get(fn.cls)
                if cls is not None and "Simulator" in cls.name:
                    entries.add(qual)
        return entries

    def _exclusions(self, program: Program, fingerprint: FunctionInfo
                    ) -> Dict[str, Tuple[str, int]]:
        """Excluded field -> (path, lineno) of the excluding line."""
        excluded: Dict[str, Tuple[str, int]] = {}
        path = fingerprint.source.path
        mod_tree = fingerprint.source.tree
        for node in mod_tree.body:
            names, value = _assign_targets(node)
            if "NON_STRUCTURAL_FIELDS" not in names or value is None:
                continue
            for inner in ast.walk(value):
                if isinstance(inner, ast.Constant) and isinstance(
                    inner.value, str
                ):
                    excluded[inner.value] = (path, inner.lineno)
        for node in ast.walk(fingerprint.node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "pop"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                excluded[node.args[0].value] = (path, node.lineno)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.slice, ast.Constant)
                            and isinstance(target.slice.value, str)):
                        excluded[target.slice.value] = (path, target.lineno)
        return excluded

    def check_program(self, program: Program) -> Iterator[Finding]:
        config_classes = [
            cls for cls in program.classes.values()
            if cls.is_dataclass and cls.name.endswith("Config")
        ]
        fingerprints = [
            fn for fn in program.functions.values()
            if fn.cls is None and fn.name == "config_fingerprint"
        ]
        if not config_classes or not fingerprints:
            return
        fields: Set[str] = set()
        computed: Set[str] = set()
        for cls in config_classes:
            fields.update(cls.fields)
            computed.update(cls.properties)
            computed.update(cls.methods)
        excluded: Dict[str, Tuple[str, int]] = {}
        for fingerprint in fingerprints:
            excluded.update(self._exclusions(program, fingerprint))

        reachable = program.reachable_from(self._entries(program))
        taint = ConfigTaint(program, {cls.name for cls in config_classes})
        reported: Set[Tuple[str, str]] = set()
        for read in taint.reads:
            if read.func not in reachable:
                continue
            if read.attr in excluded:
                where = excluded[read.attr]
                if program.has_marker(where[0], where[1], "# cache-key:"):
                    continue
                key = (read.attr, read.path)
                if key in reported:
                    continue
                reported.add(key)
                yield self.finding_at(
                    read.path, read.node,
                    f"config field '{read.attr}' is read by generation "
                    f"code (via {read.func}) but excluded from the "
                    f"structural cache fingerprint in {where[0]} — two "
                    f"configs differing only in '{read.attr}' would share "
                    f"a cache entry; include the field or justify the "
                    f"exclusion with a `# cache-key:` comment there",
                )
            elif read.attr not in fields and read.attr not in computed:
                key = (read.attr, read.path)
                if key in reported:
                    continue
                reported.add(key)
                names = ", ".join(sorted(c.name for c in config_classes))
                yield self.finding_at(
                    read.path, read.node,
                    f"read of unknown config attribute '{read.attr}' — "
                    f"not a field, property or method of {names}",
                )


# --------------------------------------------------------------------- #
# R011 fork-unsafe-capture
# --------------------------------------------------------------------- #


class ForkSafety(ProgramRule):
    """R011 fork-unsafe-capture: nothing process-local may ship through
    a fork boundary.

    ``robust.parallel.forked_map`` forks workers; a closure or items
    list that captures a lock, an open file handle, a memory-mapped
    ``PartitionStore`` reader, or a live tracer hands the child a
    handle whose kernel state it shares with the parent — fcntl locks
    silently *vanish* when the child exits, mmap pages and file
    offsets race, and a tracer object captured directly (instead of
    letting ``forked_map`` return child traces for ``merge_child``)
    loses every count the child records.  The rule inspects each
    ``forked_map`` call site: the worker function must not close over
    such state and the items must not carry it.  It also flags
    ``ProcessPoolExecutor`` / ``multiprocessing.Pool`` built outside
    ``robust.parallel`` — those children's tracers are never merged
    back.  Justify deliberate sites with ``# fork-safe:`` on the call
    line or the line above.
    """

    id = "R011"
    name = "fork-unsafe-capture"
    scope = ()

    _LOCKS = {"FileLock", "Lock", "RLock", "Semaphore", "BoundedSemaphore",
              "Condition"}
    _TRACERS = {"get_tracer", "Tracer"}
    _STORES = {"open_or_quarantine", "cached_partitioned_store", "memmap"}
    _POOLS = {"ProcessPoolExecutor", "Pool"}
    _POOL_HOME = "src/repro/robust/parallel.py"

    def _unsafe_category(self, call: ast.Call) -> Optional[str]:
        name = _terminal(call.func)
        if name in self._LOCKS:
            return "lock"
        if name in self._TRACERS:
            return "tracer"
        if name in self._STORES:
            return "mmap-backed store"
        if name == "open":
            if isinstance(call.func, ast.Name):
                return "live file handle"
            # SomeStore.open(...) / store.open(...)
            owner = _terminal(getattr(call.func, "value", None))
            if owner and "Store" in owner:
                return "mmap-backed store"
            return None
        if name == "load":
            if any(kw.arg == "mmap_mode" for kw in call.keywords):
                return "mmap-backed array"
        return None

    def _unsafe_locals(self, fn_node: ast.AST) -> Dict[str, str]:
        unsafe: Dict[str, str] = {}

        def mark(target: ast.AST, category: str) -> None:
            if isinstance(target, ast.Name):
                unsafe[target.id] = category
            elif isinstance(target, ast.Tuple):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        unsafe[elt.id] = category

        for node in ast.walk(fn_node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                category = self._unsafe_category(node.value)
                if category:
                    for target in node.targets:
                        mark(target, category)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (isinstance(item.context_expr, ast.Call)
                            and item.optional_vars is not None):
                        category = self._unsafe_category(item.context_expr)
                        if category:
                            mark(item.optional_vars, category)
        return unsafe

    def _free_names(self, node: ast.AST) -> Set[str]:
        """Names a lambda/nested def reads but does not bind itself."""
        bound: Set[str] = set()
        loads: Set[str] = set()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            args = node.args
            bound.update(a.arg for a in list(args.posonlyargs)
                         + list(args.args) + list(args.kwonlyargs))
            if args.vararg:
                bound.add(args.vararg.arg)
            if args.kwarg:
                bound.add(args.kwarg.arg)
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name):
                if isinstance(inner.ctx, ast.Store):
                    bound.add(inner.id)
                else:
                    loads.add(inner.id)
        return loads - bound

    def check_program(self, program: Program) -> Iterator[Finding]:
        for fn in program.functions.values():
            path = fn.source.path
            unsafe = self._unsafe_locals(fn.node)
            nested: Dict[str, ast.AST] = {
                node.name: node
                for node in ast.walk(fn.node)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not fn.node
            }
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                name = _terminal(node.func)
                if name in self._POOLS and path != self._POOL_HOME:
                    if not program.has_marker(path, node.lineno,
                                              "# fork-safe:"):
                        yield self.finding_at(
                            path, node,
                            f"direct {name} use bypasses "
                            f"robust.parallel.forked_map — child tracers "
                            f"are never merge_child-ed back and there is "
                            f"no serial fallback; route through "
                            f"forked_map or justify with `# fork-safe:`",
                        )
                    continue
                if name != "forked_map" or not unsafe:
                    continue
                if program.has_marker(path, node.lineno, "# fork-safe:"):
                    continue
                captured: Dict[str, str] = {}
                for arg in list(node.args) + [kw.value
                                              for kw in node.keywords]:
                    for free in self._free_names(arg) if not isinstance(
                        arg, ast.Name
                    ) else {arg.id}:
                        if free in unsafe:
                            captured[free] = unsafe[free]
                        elif free in nested:
                            for inner_free in self._free_names(nested[free]):
                                if inner_free in unsafe:
                                    captured[inner_free] = unsafe[inner_free]
                for var, category in sorted(captured.items()):
                    yield self.finding_at(
                        path, node,
                        f"forked_map ships '{var}' (a {category}) across "
                        f"the fork boundary — child processes share its "
                        f"kernel state with the parent; open/acquire it "
                        f"inside the worker instead, or justify with "
                        f"`# fork-safe:`",
                    )


# --------------------------------------------------------------------- #
# R012 schema-consistency
# --------------------------------------------------------------------- #


class SchemaConsistency(ProgramRule):
    """R012 schema-consistency: every column name and dtype in the tree
    must agree with the declared registry.

    The table dialect (``user_*``/``t_*``/``x_*`` global columns,
    ``c_*``/``p_*``/``r_*`` month columns) is declared exactly once, in
    ``repro.core.schema.COLUMN_SCHEMA``.  This rule extracts every
    column-shaped string at producer sites (dict-literal table keys,
    with the dtype the value expression constructs) and consumer sites
    (``tables["c_id"]`` subscripts, ``.col("c_id")``/``.get(...)``
    calls, ``cat("c_type", np.int8)`` merge helpers) across the whole
    ``src/`` tree and cross-checks name and dtype against the registry.
    A name outside the registry is a typo or an undeclared schema
    change; a mismatched dtype is silent truncation waiting for scale.
    Engine-internal scratch keys are declared in ``INTERNAL_COLUMNS``;
    deliberate off-registry strings can be justified with ``# schema:``
    on the line or the line above.
    """

    id = "R012"
    name = "schema-consistency"
    scope = ()

    _PATTERN = re.compile(r"^(?:user|c|t|p|r|x)_[a-z0-9_]+$")
    _CALLEES = {"col", "get", "cat", "cat_users", "cat_threads", "cat_strs",
                "pop"}
    _NP_DTYPES = {
        "int64": "int64", "int32": "int32", "int8": "int8",
        "float64": "float64", "float32": "float32",
        "bool_": "bool", "bool": "bool",
        "str_": "str", "unicode_": "str",
    }
    _ARRAY_CALLS = {"asarray", "array", "empty", "zeros", "ones", "full",
                    "arange", "concatenate", "where"}

    def _registry(self, program: Program
                  ) -> "Optional[Tuple[str, Dict[str, str], Set[str]]]":
        for mod in program.modules.values():
            schema: Optional[Dict[str, str]] = None
            internal: Set[str] = set()
            for node in mod.source.tree.body:
                names, value = _assign_targets(node)
                if value is None:
                    continue
                if "COLUMN_SCHEMA" in names and isinstance(value, ast.Dict):
                    entries: Dict[str, str] = {}
                    for key, val in zip(value.keys, value.values):
                        if (isinstance(key, ast.Constant)
                                and isinstance(key.value, str)
                                and isinstance(val, ast.Constant)
                                and isinstance(val.value, str)):
                            entries[key.value] = val.value
                    schema = entries
                elif "INTERNAL_COLUMNS" in names:
                    for inner in ast.walk(value):
                        if isinstance(inner, ast.Constant) and isinstance(
                            inner.value, str
                        ):
                            internal.add(inner.value)
            if schema is not None:
                return mod.source.path, schema, internal
        return None

    def _dtype_of_expr(self, expr: ast.AST) -> Optional[str]:
        """The storage dtype an expression constructs, when inferable."""
        if isinstance(expr, ast.IfExp):
            branches = [self._dtype_of_expr(expr.body),
                        self._dtype_of_expr(expr.orelse)]
            resolved = [b for b in branches if b]
            if len(set(resolved)) == 1:
                return resolved[0]
            return None
        if not isinstance(expr, ast.Call):
            return None
        name = _terminal(expr.func)
        if name == "astype" and expr.args:
            return self._dtype_name(expr.args[0])
        for kw in expr.keywords:
            if kw.arg == "dtype":
                return self._dtype_name(kw.value)
        if name == "cat" and len(expr.args) >= 2:
            return self._dtype_name(expr.args[1])
        if name in self._ARRAY_CALLS and len(expr.args) >= 2:
            return self._dtype_name(expr.args[-1])
        return None

    def _dtype_name(self, node: ast.AST) -> Optional[str]:
        terminal = _terminal(node)
        if terminal is None:
            return None
        return self._NP_DTYPES.get(terminal)

    def check_program(self, program: Program) -> Iterator[Finding]:
        registry = self._registry(program)
        if registry is None:
            return
        registry_path, schema, internal = registry
        known = set(schema) | internal

        def check_name(path: str, node: ast.AST, name: str,
                       context: str) -> Iterator[Finding]:
            if name in known:
                return
            if program.has_marker(path, node.lineno, "# schema:"):
                return
            yield self.finding_at(
                path, node,
                f"column name '{name}' ({context}) is not declared in "
                f"the schema registry ({registry_path}) — fix the typo, "
                f"register the column, or justify with `# schema:`",
            )

        for source in program.sources:
            path = source.path
            if path == registry_path:
                continue
            for node in ast.walk(source.tree):
                if isinstance(node, ast.Dict):
                    for key, value in zip(node.keys, node.values):
                        if not (isinstance(key, ast.Constant)
                                and isinstance(key.value, str)
                                and self._PATTERN.match(key.value)):
                            continue
                        yield from check_name(path, key, key.value,
                                              "table dict key")
                        declared = schema.get(key.value)
                        produced = self._dtype_of_expr(value)
                        if (declared and produced
                                and produced != declared
                                and not program.has_marker(
                                    path, key.lineno, "# schema:")):
                            yield self.finding_at(
                                path, key,
                                f"column '{key.value}' produced with "
                                f"dtype {produced} but the schema "
                                f"registry declares {declared} — silent "
                                f"truncation/widening at store "
                                f"boundaries",
                            )
                elif isinstance(node, ast.Subscript):
                    index = node.slice
                    if (isinstance(index, ast.Constant)
                            and isinstance(index.value, str)
                            and self._PATTERN.match(index.value)):
                        yield from check_name(path, node, index.value,
                                              "table subscript")
                elif isinstance(node, ast.Call):
                    if (_terminal(node.func) in self._CALLEES
                            and node.args
                            and isinstance(node.args[0], ast.Constant)
                            and isinstance(node.args[0].value, str)
                            and self._PATTERN.match(node.args[0].value)):
                        yield from check_name(
                            path, node, node.args[0].value,
                            f"{_terminal(node.func)}() argument",
                        )


# --------------------------------------------------------------------- #
# R013 rng-provenance
# --------------------------------------------------------------------- #


class RngProvenance(ProgramRule):
    """R013 rng-provenance: no unseeded Generator may reach a kernel,
    even through helpers.

    R001 stops calls into the *global* RNGs, but a
    ``np.random.default_rng()`` (no seed) or bare ``SeedSequence()``
    pulls OS entropy — per-run nondeterminism with exactly the same
    consequences, and trivially laundered through a helper function
    (``def make_rng(): return np.random.default_rng()``).  This rule
    finds every unseeded numpy generator/bit-generator/seed-sequence
    construction in ``src/``, then propagates *returns an unseeded
    generator* across the call graph and flags every call site that
    consumes one.  Thread the config seed (or a spawned
    ``SeedSequence``) down instead.  Deliberately nondeterministic
    sites (none exist today) take an ``# rng:`` justification on the
    construction line, which also clears the downstream call sites.
    """

    id = "R013"
    name = "rng-provenance"
    scope = ()

    _CREATORS = {"default_rng", "SeedSequence", "PCG64", "Philox", "SFC64",
                 "MT19937"}

    def _creator_name(self, program: Program, module: str,
                      call: ast.Call) -> Optional[str]:
        """The numpy.random creator this call constructs, if any."""
        chain = _dotted_chain(call.func)
        if not chain or chain[-1] not in self._CREATORS | {"Generator"}:
            return None
        mod = program.modules.get(module)
        imports = mod.imports if mod else {}
        head = imports.get(chain[0], chain[0])
        dotted = ".".join([head] + list(chain[1:]))
        if dotted.startswith("numpy.random.") or dotted.startswith(
            "numpy.Generator"
        ):
            return chain[-1]
        return None

    def _is_unseeded(self, program: Program, module: str,
                     call: ast.Call) -> bool:
        name = self._creator_name(program, module, call)
        if name is None:
            return False
        if name == "Generator":
            return any(
                isinstance(arg, ast.Call)
                and self._is_unseeded(program, module, arg)
                for arg in call.args
            )
        return not call.args and not call.keywords

    def check_program(self, program: Program) -> Iterator[Finding]:
        direct: Dict[str, List[ast.Call]] = {}
        justified_fns: Set[str] = set()
        for fn in program.functions.values():
            sites = [
                node for node in ast.walk(fn.node)
                if isinstance(node, ast.Call)
                and self._is_unseeded(program, fn.module, node)
            ]
            if sites:
                direct[fn.qualname] = sites
                if all(program.has_marker(fn.source.path, s.lineno, "# rng:")
                       for s in sites):
                    justified_fns.add(fn.qualname)

        # functions that (transitively) return an unseeded generator
        unseeded_returning: Set[str] = set(
            q for q in direct if q not in justified_fns
        )
        for _ in range(len(program.functions)):
            added = False
            for fn in program.functions.values():
                if (fn.qualname in unseeded_returning
                        or fn.qualname in justified_fns):
                    continue
                if self._returns_unseeded(program, fn, unseeded_returning):
                    unseeded_returning.add(fn.qualname)
                    added = True
            if not added:
                break

        for qual, sites in direct.items():
            fn = program.functions[qual]
            for site in sites:
                if program.has_marker(fn.source.path, site.lineno, "# rng:"):
                    continue
                yield self.finding_at(
                    fn.source.path, site,
                    f"unseeded numpy generator constructed in {qual} — "
                    f"output differs every run; thread the config seed / "
                    f"a spawned SeedSequence through, or justify with "
                    f"`# rng:`",
                )
        for fn in program.functions.values():
            for call, target in program.calls.get(fn.qualname, ()):
                if target not in unseeded_returning:
                    continue
                if target == fn.qualname or fn.qualname in unseeded_returning:
                    continue
                if program.has_marker(fn.source.path, call.lineno, "# rng:"):
                    continue
                yield self.finding_at(
                    fn.source.path, call,
                    f"call receives a Generator created without a seed "
                    f"inside '{target}' — the nondeterminism crosses the "
                    f"function boundary; pass an explicit seed through "
                    f"the helper",
                )

    def _returns_unseeded(self, program: Program, fn: FunctionInfo,
                          unseeded: Set[str]) -> bool:
        resolved = dict(program.calls.get(fn.qualname, ()))
        tainted_locals: Set[str] = set()

        def value_unseeded(expr: Optional[ast.AST]) -> bool:
            if expr is None:
                return False
            if isinstance(expr, ast.Name):
                return expr.id in tainted_locals
            if isinstance(expr, ast.Call):
                if self._is_unseeded(program, fn.module, expr):
                    return True
                for call, target in program.calls.get(fn.qualname, ()):
                    if call is expr and target in unseeded:
                        return True
            return False

        for _ in range(2):
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign) and value_unseeded(
                    node.value
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tainted_locals.add(target.id)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and value_unseeded(node.value):
                return True
        return False


# --------------------------------------------------------------------- #
# R014 stale-justification
# --------------------------------------------------------------------- #


class StaleJustification(ProgramRule):
    """R014 stale-justification: a justification comment must sit on a
    line that still triggers its rule.

    The marker comments (``# robust:``, ``# partition:``,
    ``# fork-safe:``, ``# cache-key:``, ``# rng:``, ``# schema:``) are
    load-bearing: each one switches off a lint rule at one site.  When
    the code under a marker is refactored away the comment tends to
    stay — a suppression with nothing to suppress, which will silently
    swallow the *next* real finding that drifts onto that line.  For
    every marker comment (real ``tokenize`` comments only, so
    docstrings that merely mention a marker never count) this rule
    checks that the line below or beside it actually contains the
    construct the marker justifies — a broad except handler for
    ``# robust:``, a ``.materialize()``/``.tables()`` call for
    ``# partition:``, a fork site for ``# fork-safe:``, a fingerprint
    exclusion for ``# cache-key:``, an RNG construction for
    ``# rng:``, a column-name string for ``# schema:`` — and tells you
    to delete or move the comment otherwise.
    """

    id = "R014"
    name = "stale-justification"
    scope = ()

    _MARKERS = ("# robust:", "# partition:", "# fork-safe:", "# cache-key:",
                "# rng:", "# schema:")
    _RNG_NAMES = {"default_rng", "Generator", "SeedSequence", "PCG64",
                  "Philox", "SFC64", "MT19937"}
    _COLUMN = re.compile(r"^(?:user|c|t|p|r|x)_[a-z0-9_]+$")

    def _anchors(self, tree: ast.Module) -> Dict[str, Set[int]]:
        """Marker -> line numbers that legitimately carry it."""
        anchors: Dict[str, Set[int]] = {m: set() for m in self._MARKERS}
        fingerprint_funcs = [
            node for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == "config_fingerprint"
        ]
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler):
                anchors["# robust:"].add(node.lineno)
            elif isinstance(node, ast.Call):
                name = _terminal(node.func)
                if (isinstance(node.func, ast.Attribute)
                        and name in ("materialize", "tables")):
                    anchors["# partition:"].add(node.lineno)
                if name in ("forked_map", "ProcessPoolExecutor", "Pool"):
                    anchors["# fork-safe:"].add(node.lineno)
                if name in self._RNG_NAMES:
                    anchors["# rng:"].add(node.lineno)
            if isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ) and self._COLUMN.match(node.value):
                anchors["# schema:"].add(node.lineno)
        for node in ast.walk(tree):
            names, value = _assign_targets(node)
            if "NON_STRUCTURAL_FIELDS" in names:
                end = getattr(node, "end_lineno", node.lineno)
                anchors["# cache-key:"].update(
                    range(node.lineno, end + 1)
                )
        for func in fingerprint_funcs:
            for node in ast.walk(func):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "pop"):
                    anchors["# cache-key:"].add(node.lineno)
                elif isinstance(node, ast.Delete):
                    anchors["# cache-key:"].add(node.lineno)
        return anchors

    def check_program(self, program: Program) -> Iterator[Finding]:
        for source in program.sources:
            anchors = self._anchors(source.tree)
            for lineno, comment in sorted(
                program.comments.get(source.path, {}).items()
            ):
                for marker in self._MARKERS:
                    if marker not in comment:
                        continue
                    if (lineno in anchors[marker]
                            or lineno + 1 in anchors[marker]):
                        continue
                    yield Finding(
                        path=source.path, line=lineno, col=0,
                        rule=self.id, severity=self.severity,
                        message=(
                            f"stale `{marker}` justification — no "
                            f"construct its rule checks sits on this "
                            f"line or the next; the suppression is "
                            f"dead, delete the comment or move it to "
                            f"the triggering line"
                        ),
                    )


#: Registered by :mod:`repro.devtools.lint.rules` into the main table.
PROGRAM_RULES: Dict[str, type] = {
    rule.id: rule
    for rule in (
        CacheKeyCompleteness,
        ForkSafety,
        SchemaConsistency,
        RngProvenance,
        StaleJustification,
    )
}
