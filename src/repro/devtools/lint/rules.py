"""The reprolint rule set.

Each rule is a small class with an ``id``, ``severity``, a ``scope``
(which file kinds it visits) and a docstring that ``repro lint
--explain <id>`` renders verbatim.  Rules implement ``visit`` (called
once per in-scope file) and/or ``finalize`` (called once with every
collected file, for cross-module checks such as fast-path parity).

The rules encode invariants specific to this reproduction:

* determinism — the paper's era comparisons assume ``repro.synth`` is
  bit-identical per seed, so randomness must flow through explicit
  ``numpy.random.Generator`` objects and library code must not read the
  wall clock;
* fast/object parity — every vectorized ``fast=`` kernel must keep a
  parity test against its object-path reference;
* era hygiene — the externally-defined era boundaries (1 Jun 2018 /
  1 Mar 2019 / 11 Mar 2020) live only in :mod:`repro.core.eras`;
* failure hygiene — catch-all exception handlers in library code must
  carry a written ``# robust:`` justification (R008) so degradation
  boundaries are deliberate, not accidental swallowing;
* out-of-core hygiene — analysis-layer code must not force a full
  partitioned-store materialization without a written ``# partition:``
  justification (R009), so windowed queries keep opening only the
  month shards they touch.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding

__all__ = ["Rule", "RULES", "all_rules", "rule_by_id"]


def _dotted(node: ast.AST) -> Tuple[str, ...]:
    """The name chain of an expression: ``np.random.rand`` -> its parts.

    Returns an empty tuple for anything that isn't a plain Name/Attribute
    chain (calls, subscripts, ...).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _terminal_name(func: ast.AST) -> Optional[str]:
    """Last component of a callee: ``f(...)`` -> "f", ``a.b.f(...)`` -> "f"."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _int_args(call: ast.Call, count: int) -> Optional[Tuple[int, ...]]:
    """First ``count`` positional args if they are all int literals."""
    if len(call.args) < count:
        return None
    values = []
    for arg in call.args[:count]:
        if isinstance(arg, ast.Constant) and type(arg.value) is int:
            values.append(arg.value)
        else:
            return None
    return tuple(values)


class Rule:
    """Base class: subclasses override ``visit`` and/or ``finalize``.

    Whole-program rules (:mod:`repro.devtools.lint.rules_program`) set
    ``requires_program`` and implement ``check_program`` instead; the
    engine builds the shared :class:`~repro.devtools.lint.program.
    Program` index once when any selected rule asks for it.
    """

    id: str = ""
    name: str = ""
    severity: str = "error"
    #: Which file kinds the per-file ``visit`` hook receives.
    scope: Tuple[str, ...] = ("src",)
    #: True for rules that run on the whole-program index.
    requires_program: bool = False

    def visit(self, source: "SourceFile") -> Iterator[Finding]:  # noqa: F821
        return iter(())

    def finalize(
        self, sources: Sequence["SourceFile"]  # noqa: F821
    ) -> Iterator[Finding]:
        return iter(())

    def finding(
        self, source: "SourceFile", node: ast.AST, message: str  # noqa: F821
    ) -> Finding:
        return Finding(
            path=source.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            severity=self.severity,
            message=message,
        )


# --------------------------------------------------------------------- #
# R001 unseeded-rng
# --------------------------------------------------------------------- #


class UnseededRng(Rule):
    """R001 unseeded-rng: all randomness must flow through an explicit
    ``numpy.random.Generator``.

    The simulator is bit-deterministic per seed — the paper's SET-UP /
    STABLE / COVID-19 comparisons are meaningless if two runs of
    ``repro.synth`` diverge.  Calls into the *global* RNGs break that
    contract silently, so inside ``src/`` this rule forbids

    * every call through numpy's module-level RNG (``np.random.rand``,
      ``np.random.seed``, ``np.random.shuffle``, ...), and
    * every call through the stdlib ``random`` module
      (``random.random``, ``random.choice``, ...).

    Constructing generators is fine: ``np.random.default_rng(seed)``,
    ``np.random.Generator``/``SeedSequence``/``PCG64`` and type
    annotations are all allowed.  Pass the resulting ``Generator`` down
    the call stack instead of reaching for global state.
    """

    id = "R001"
    name = "unseeded-rng"
    scope = ("src",)

    _ALLOWED_NP = {"default_rng", "Generator", "SeedSequence", "BitGenerator",
                   "PCG64", "Philox", "SFC64", "MT19937"}

    def visit(self, source):  # noqa: ANN001
        stdlib_aliases = {"random"}
        from_random: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        stdlib_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    from_random.add(alias.asname or alias.name)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if len(chain) >= 3 and chain[-2] == "random" and chain[0] in (
                "np", "numpy"
            ):
                if chain[-1] not in self._ALLOWED_NP:
                    yield self.finding(
                        source, node,
                        f"call to numpy global RNG "
                        f"'{'.'.join(chain)}' — use an explicit "
                        f"numpy.random.Generator (np.random.default_rng(seed))",
                    )
            elif (
                len(chain) == 2
                and chain[0] in stdlib_aliases
                and chain[0] != "np"
            ):
                yield self.finding(
                    source, node,
                    f"call to stdlib random '{'.'.join(chain)}' — use an "
                    f"explicit numpy.random.Generator",
                )
            elif len(chain) == 1 and chain[0] in from_random:
                yield self.finding(
                    source, node,
                    f"call to '{chain[0]}' imported from stdlib random — "
                    f"use an explicit numpy.random.Generator",
                )


# --------------------------------------------------------------------- #
# R002 wall-clock-in-library
# --------------------------------------------------------------------- #


class WallClockInLibrary(Rule):
    """R002 wall-clock-in-library: library code must not read the wall
    clock.

    ``time.time()``, ``time.time_ns()``, ``datetime.now()``,
    ``datetime.today()``, ``date.today()`` and ``datetime.utcnow()``
    make output depend on when the code runs, which breaks run-to-run
    reproducibility and poisons the dataset cache (results keyed by
    config would differ by wall time).  The same discipline keeps
    ``repro.runs`` ids stable: run identity is derived from the
    persisted :class:`~repro.runs.contract.RunContext` (config
    fingerprint, seed, scale, experiment set), never from timestamps —
    ``created_unix`` provenance stamps are passed in by the CLI, the
    one layer allowed to read the clock.  Timing is a presentation
    concern: it is allowed in ``cli.py`` (progress messages) and under
    ``benchmarks/``.  Monotonic *interval* clocks
    (``time.perf_counter`` / ``time.monotonic``) are always allowed —
    they measure durations, not calendar time.
    """

    id = "R002"
    name = "wall-clock-in-library"
    scope = ("src",)

    _DT_METHODS = {"now", "today", "utcnow"}
    _DT_OWNERS = {"datetime", "date", "dt", "_dt"}

    def _allowed_path(self, path: str) -> bool:
        return path.endswith("/cli.py") or "benchmarks/" in path

    def visit(self, source):  # noqa: ANN001
        if self._allowed_path(source.path):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if chain in (("time", "time"), ("time", "time_ns")):
                yield self.finding(
                    source, node,
                    f"{'.'.join(chain)}() in library code — wall-clock "
                    "reads belong in cli.py or benchmarks/ (use "
                    "time.perf_counter for intervals)",
                )
            elif (
                len(chain) >= 2
                and chain[-1] in self._DT_METHODS
                and chain[-2] in self._DT_OWNERS
            ):
                yield self.finding(
                    source, node,
                    f"wall-clock call '{'.'.join(chain)}()' in library code "
                    f"— pass timestamps in explicitly",
                )


# --------------------------------------------------------------------- #
# R003 fast-path-parity
# --------------------------------------------------------------------- #


class FastPathParity(Rule):
    """R003 fast-path-parity: every public function exposing a ``fast``
    keyword must be exercised against its object-path reference.

    The vectorized kernels only stay trustworthy while a test pins
    ``fast=True`` output to the ``fast=False`` reference implementation.
    This rule collects every public ``def f(..., fast=...)`` in ``src/``
    and requires that some test in ``tests/`` calls ``f`` (by name, as a
    function or method) with the literal keyword ``fast=False``.
    Matching is by terminal name, so ``ds.summary(fast=False)`` covers
    ``MarketDataset.summary``.  Private (underscore-prefixed) helpers
    are exempt — their public callers are checked instead.
    """

    id = "R003"
    name = "fast-path-parity"
    scope = ("src", "tests")

    def finalize(self, sources):  # noqa: ANN001
        fast_funcs: List[Tuple["SourceFile", ast.AST, str]] = []  # noqa: F821
        referenced: Set[str] = set()
        for source in sources:
            if source.kind == "src":
                for node in ast.walk(source.tree):
                    if not isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    if node.name.startswith("_"):
                        continue
                    args = node.args
                    names = [
                        a.arg
                        for a in (
                            list(args.posonlyargs)
                            + list(args.args)
                            + list(args.kwonlyargs)
                        )
                    ]
                    if "fast" in names:
                        fast_funcs.append((source, node, node.name))
            elif source.kind == "tests":
                for node in ast.walk(source.tree):
                    if not isinstance(node, ast.Call):
                        continue
                    for kw in node.keywords:
                        if (
                            kw.arg == "fast"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is False
                        ):
                            name = _terminal_name(node.func)
                            if name:
                                referenced.add(name)
        for source, node, name in fast_funcs:
            if name not in referenced:
                yield self.finding(
                    source, node,
                    f"public fast-path function '{name}' has no "
                    f"fast=False parity reference in tests/ — add a test "
                    f"comparing fast=True against fast=False",
                )


# --------------------------------------------------------------------- #
# R004 object-loop-in-kernel
# --------------------------------------------------------------------- #


class ObjectLoopInKernel(Rule):
    """R004 object-loop-in-kernel: columnar kernels must not fall back to
    per-object Python loops.

    A *columnar kernel* — a function whose name ends in ``_columnar``,
    that carries the ``@columnar_kernel`` decorator from
    :mod:`repro.core.columns`, or that lives in an all-columnar module
    (:mod:`repro.synth.fastgen`, where the whole point is generating
    into arrays) — promises to compute on the
    :class:`~repro.core.columns.ColumnStore` arrays.  A ``for`` loop (or
    comprehension) over the entity lists ``.contracts`` / ``.posts`` /
    ``.users`` inside one re-introduces the interpreted per-object walk
    the kernel exists to avoid, usually silently after a refactor.
    Iterate over store arrays (``np.bincount``, boolean masks,
    ``np.add.at``) instead, or drop the kernel marking if the function is
    genuinely object-path code.
    """

    id = "R004"
    name = "object-loop-in-kernel"
    scope = ("src",)

    _ENTITY_LISTS = {"contracts", "posts", "users"}
    #: Modules where *every* function is held to the kernel contract.
    _KERNEL_MODULES = ("src/repro/synth/fastgen.py",)

    def _is_kernel(self, node: ast.AST, module_is_kernel: bool = False) -> bool:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        if module_is_kernel:
            return True
        if node.name.endswith("_columnar"):
            return True
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if _terminal_name(target) == "columnar_kernel":
                return True
        return False

    def _entity_iter(self, iter_node: ast.AST) -> Optional[str]:
        node = iter_node
        # unwrap slicing/calls like ds.contracts[:n] or list(ds.contracts)
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Call) and len(node.args) == 1:
            inner = node.args[0]
            while isinstance(inner, ast.Subscript):
                inner = inner.value
            if isinstance(inner, ast.Attribute):
                node = inner
        if isinstance(node, ast.Attribute) and node.attr in self._ENTITY_LISTS:
            return node.attr
        return None

    def visit(self, source):  # noqa: ANN001
        module_is_kernel = source.path in self._KERNEL_MODULES
        for func in ast.walk(source.tree):
            if not self._is_kernel(func, module_is_kernel):
                continue
            for node in ast.walk(func):
                iters: List[ast.AST] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp)
                ):
                    iters.extend(gen.iter for gen in node.generators)
                for iter_node in iters:
                    attr = self._entity_iter(iter_node)
                    if attr:
                        yield self.finding(
                            source, node,
                            f"columnar kernel '{func.name}' loops over "
                            f".{attr} — compute on ColumnStore arrays "
                            f"instead of per-object Python loops",
                        )


# --------------------------------------------------------------------- #
# R005 era-literal
# --------------------------------------------------------------------- #


class EraLiteral(Rule):
    """R005 era-literal: era-boundary dates have one home,
    :mod:`repro.core.eras`.

    The SET-UP / STABLE / COVID-19 boundaries (1 Jun 2018, 28 Feb 2019 /
    1 Mar 2019, 10 Mar 2020 / 11 Mar 2020, 30 Jun 2020) are external
    facts from §3 of the paper.  Re-typing them as ``Month(2019, 3)`` or
    ``date(2020, 3, 11)`` literals scatters the definition: if one copy
    is ever corrected the others silently diverge.  Use
    ``repro.core.eras`` (``SETUP`` / ``STABLE`` / ``COVID19`` /
    ``DATA_START`` / ``DATA_END``) plus ``month_of`` / ``add_months``
    arithmetic.  Calibration data tables are exempt via an allowlist
    (``synth/config.py``, ``blockchain/rates.py``) because their anchor
    grids legitimately mention boundary months as *data*, and
    ``core/eras.py`` itself is the definition site.
    """

    id = "R005"
    name = "era-literal"
    scope = ("src",)

    _ALLOWLIST = (
        "src/repro/core/eras.py",
        "src/repro/synth/config.py",
        "src/repro/blockchain/rates.py",
    )

    #: First/last calendar month of each era.
    _BOUNDARY_MONTHS = {
        (2018, 6), (2019, 2), (2019, 3), (2020, 3), (2020, 6),
    }
    #: Exact first/last day of each era.
    _BOUNDARY_DATES = {
        (2018, 6, 1), (2019, 2, 28), (2019, 3, 1),
        (2020, 3, 10), (2020, 3, 11), (2020, 6, 30),
    }

    def visit(self, source):  # noqa: ANN001
        if source.path in self._ALLOWLIST:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _terminal_name(node.func)
            if name == "Month":
                pair = _int_args(node, 2)
                if pair and pair in self._BOUNDARY_MONTHS:
                    yield self.finding(
                        source, node,
                        f"era-boundary month literal Month{pair} — derive "
                        f"it from repro.core.eras constants",
                    )
            elif name == "parse" and _terminal_name(
                getattr(node.func, "value", None)
            ) == "Month":
                if node.args and isinstance(node.args[0], ast.Constant) and \
                        isinstance(node.args[0].value, str):
                    parts = node.args[0].value.split("-")
                    if len(parts) == 2 and all(p.isdigit() for p in parts):
                        pair = (int(parts[0]), int(parts[1]))
                        if pair in self._BOUNDARY_MONTHS:
                            yield self.finding(
                                source, node,
                                f"era-boundary month literal "
                                f"Month.parse('{node.args[0].value}') — "
                                f"derive it from repro.core.eras constants",
                            )
            elif name in ("date", "datetime"):
                triple = _int_args(node, 3)
                if triple and triple in self._BOUNDARY_DATES:
                    yield self.finding(
                        source, node,
                        f"era-boundary date literal {name}{triple} — use "
                        f"repro.core.eras constants (SETUP/STABLE/COVID19/"
                        f"DATA_START/DATA_END)",
                    )


# --------------------------------------------------------------------- #
# R006 float-equality
# --------------------------------------------------------------------- #


class FloatEquality(Rule):
    """R006 float-equality: tests must not compare floats with ``==`` or
    ``!=``.

    Exact float comparison makes a test's verdict depend on summation
    order and platform rounding — precisely what changes when a kernel
    is vectorized or parallelised, so such tests either flake or mask
    real drift.  The rule flags ``==``/``!=`` comparisons in ``tests/``
    where either side is a float literal or an arithmetic expression
    containing one; use ``pytest.approx`` (or ``math.isclose`` /
    ``np.allclose``) instead.  Comparisons of computed floats against
    each other cannot be detected statically without type inference and
    are out of scope.
    """

    id = "R006"
    name = "float-equality"
    scope = ("tests",)

    def _floaty(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return type(node.value) is float
        if isinstance(node, ast.UnaryOp):
            return self._floaty(node.operand)
        if isinstance(node, ast.BinOp):
            return self._floaty(node.left) or self._floaty(node.right)
        return False

    def visit(self, source):  # noqa: ANN001
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(
                node.ops, operands[:-1], operands[1:]
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._floaty(left) or self._floaty(right):
                    yield self.finding(
                        source, node,
                        "float equality comparison in a test — use "
                        "pytest.approx / math.isclose / np.allclose",
                    )
                    break


# --------------------------------------------------------------------- #
# R007 undocumented-public-module
# --------------------------------------------------------------------- #


class UndocumentedPublicModule(Rule):
    """R007 undocumented-public-module: every module under ``src/repro``
    must open with a module docstring.

    The documentation site (``docs/``) orients readers by package, but
    the per-module story lives in the modules themselves — the docstring
    is the one place a reader landing via ``help()``, an editor hover or
    the docs' package map learns what a file is *for*.  A missing
    docstring is usually a freshly split module whose purpose exists
    only in a commit message.  State the module's job in a sentence or
    two at the top; tests and benchmarks are out of scope (their names
    carry the intent).
    """

    id = "R007"
    name = "undocumented-public-module"
    scope = ("src",)

    def visit(self, source):  # noqa: ANN001
        if ast.get_docstring(source.tree) is None:
            yield self.finding(
                source, source.tree,
                "module has no docstring — open every src/repro module "
                "with a short statement of what it is for",
            )


# --------------------------------------------------------------------- #
# R008 broad-except-unjustified
# --------------------------------------------------------------------- #


class BroadExceptUnjustified(Rule):
    """R008 broad-except-unjustified: catch-all handlers in library code
    need a written justification.

    A bare ``except:``, ``except Exception:`` or ``except
    BaseException:`` swallows everything — including the corruption and
    injected-fault signals the robustness layer
    (:mod:`repro.robust`) depends on surfacing.  The 2020-era cache bug
    this repo's fault harness reproduces hid behind exactly such a
    handler.  Catch-alls are still legitimate at *degradation
    boundaries* (the runner converting a failed experiment into a
    structured error record instead of dying), so the rule does not ban
    them: it requires a ``# robust:`` comment on the ``except`` line or
    the line directly above, stating why swallowing everything is the
    right behaviour there.  Handlers naming specific exception types
    (even long tuples of them) are always fine.
    """

    id = "R008"
    name = "broad-except-unjustified"
    scope = ("src",)

    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, type_node: Optional[ast.AST]) -> bool:
        if type_node is None:  # bare `except:`
            return True
        nodes = (
            list(type_node.elts)
            if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        return any(_dotted(node)[-1:] in (("Exception",), ("BaseException",))
                   for node in nodes)

    def _justified(self, source, handler: ast.excepthandler) -> bool:  # noqa: ANN001
        lines = source.text.splitlines()
        for lineno in (handler.lineno, handler.lineno - 1):
            if 1 <= lineno <= len(lines) and "# robust:" in lines[lineno - 1]:
                return True
        return False

    def visit(self, source):  # noqa: ANN001
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._justified(source, node):
                continue
            shown = (
                "bare `except:`"
                if node.type is None
                else "broad `except " + (
                    "/".join(
                        ".".join(_dotted(n)) or "..."
                        for n in (
                            node.type.elts
                            if isinstance(node.type, ast.Tuple)
                            else [node.type]
                        )
                    )
                ) + "`"
            )
            yield self.finding(
                source, node,
                f"{shown} without justification — add a `# robust:` "
                f"comment on the handler (or the line above) explaining "
                f"why a catch-all is correct here, or name the specific "
                f"exceptions",
            )


# --------------------------------------------------------------------- #
# R009 full-store-materialize
# --------------------------------------------------------------------- #


class FullStoreMaterialize(Rule):
    """R009 full-store-materialize: analysis code must not silently force
    a full-store materialization.

    The month-partitioned store (:mod:`repro.core.partitions`) exists so
    windowed and per-era questions touch only the month shards they
    need; the incremental kernels in :mod:`repro.analysis.streaming`
    answer every paper question that way.  Calling ``.materialize()`` or
    ``.tables()`` inside the analysis layers (``src/repro/analysis/``,
    ``src/repro/network/``) loads *all* partitions into resident arrays
    — exactly the cost the store was built to avoid, and the kind of
    regression that creeps in silently when a kernel grows a "simple"
    fallback.  Genuine whole-history needs still exist (a kernel whose
    algebra is not mergeable), so the rule does not ban the calls: it
    requires a ``# partition:`` comment on the call line or the line
    directly above, stating why resident materialization is the right
    cost there.  Loader code (``repro.synth.cache``) and the store
    itself are out of scope — only the analysis layers promise to stay
    incremental.
    """

    id = "R009"
    name = "full-store-materialize"
    scope = ("src",)

    _FORCING = {"materialize", "tables"}
    _SCOPES = ("src/repro/analysis/", "src/repro/network/")

    def _justified(self, source, node: ast.AST) -> bool:  # noqa: ANN001
        lines = source.text.splitlines()
        for lineno in (node.lineno, node.lineno - 1):
            if 1 <= lineno <= len(lines) and "# partition:" in lines[lineno - 1]:
                return True
        return False

    def visit(self, source):  # noqa: ANN001
        if not source.path.startswith(self._SCOPES):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in self._FORCING:
                continue
            if self._justified(source, node):
                continue
            yield self.finding(
                source, node,
                f".{node.func.attr}() in the analysis layer forces a "
                f"full-store materialization — fold incremental kernels "
                f"over the month partitions instead "
                f"(repro.analysis.streaming), or add a `# partition:` "
                f"comment stating why resident arrays are required here",
            )


#: Rule registry in id order; ``repro lint --list-rules`` renders it.
RULES: Dict[str, type] = {
    rule.id: rule
    for rule in (
        UnseededRng,
        WallClockInLibrary,
        FastPathParity,
        ObjectLoopInKernel,
        EraLiteral,
        FloatEquality,
        UndocumentedPublicModule,
        BroadExceptUnjustified,
        FullStoreMaterialize,
    )
}

# The whole-program rules (R010–R014) live in rules_program; the import
# sits below the registry so rules_program can import Rule from here.
from .rules_program import PROGRAM_RULES  # noqa: E402

RULES.update(PROGRAM_RULES)


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return [RULES[rule_id]() for rule_id in sorted(RULES)]


def rule_by_id(rule_id: str) -> Rule:
    """Instantiate one rule; raises KeyError with the known ids."""
    key = rule_id.strip().upper()
    if key not in RULES:
        known = ", ".join(sorted(RULES))
        raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")
    return RULES[key]()
