"""SARIF 2.1.0 rendering of a lint run.

SARIF (Static Analysis Results Interchange Format) is the one format
code-hosting CI understands natively: uploading a ``.sarif`` file turns
each finding into an inline annotation on the pull-request diff.  The
renderer keeps to the minimal stable subset — one run, one driver, one
result per finding, rule metadata from the registered rule docstrings —
so the output validates against the 2.1.0 schema without dragging in a
dependency.  Baseline-suppressed findings are emitted with a
``suppressions`` entry instead of being dropped, which is how SARIF
viewers distinguish "fixed" from "hidden".
"""

from __future__ import annotations

import inspect
from typing import Dict, List

from .findings import Finding
from .rules import RULES

__all__ = ["render_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_metadata() -> List[Dict[str, object]]:
    rules = []
    for rule_id in sorted(RULES):
        rule_cls = RULES[rule_id]
        doc = inspect.getdoc(rule_cls) or ""
        headline = doc.splitlines()[0] if doc else rule_id
        rules.append({
            "id": rule_id,
            "name": rule_cls.name or rule_id,
            "shortDescription": {"text": headline},
            "fullDescription": {"text": doc},
            "defaultConfiguration": {
                "level": _LEVELS.get(rule_cls.severity, "error"),
            },
        })
    return rules


def _result(finding: Finding, suppressed: bool) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "error"),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col + 1,
                },
            },
        }],
    }
    if suppressed:
        result["suppressions"] = [{
            "kind": "external",
            "justification": "listed in lint-baseline.txt",
        }]
    return result


def render_sarif(result: "LintResult") -> Dict[str, object]:  # noqa: F821
    """The SARIF document for one lint run, as a JSON-ready dict."""
    results = [_result(f, suppressed=False) for f in result.findings]
    results.extend(_result(f, suppressed=True) for f in result.suppressed)
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "informationUri": "docs/linting.md",
                    "rules": _rule_metadata(),
                },
            },
            "results": results,
            "columnKind": "unicodeCodePoints",
        }],
    }
