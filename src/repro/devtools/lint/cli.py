"""Rendering and command handling for ``python -m repro lint``.

The argparse wiring lives in :mod:`repro.cli`; this module turns the
parsed namespace into a lint run and renders the result as human text or
JSON.  Exit codes: 0 clean, 1 findings (or parse errors), 2 usage
errors.
"""

from __future__ import annotations

import inspect
import json
import os
import sys
from typing import List

from .engine import DEFAULT_BASELINE_NAME, run_lint
from .findings import save_baseline
from .rules import RULES, rule_by_id

__all__ = ["run_lint_command"]


def _explain(rule_id: str) -> int:
    try:
        rule = rule_by_id(rule_id)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    doc = inspect.getdoc(type(rule)) or "(no documentation)"
    print(f"{rule.id} {rule.name} [{rule.severity}]")
    print()
    print(doc)
    return 0


def _list_rules() -> int:
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]()
        doc = inspect.getdoc(RULES[rule_id]) or ""
        headline = doc.splitlines()[0] if doc else ""
        print(f"{rule.id}  {rule.name:<24s} {headline}")
    return 0


def run_lint_command(args) -> int:
    """Handle the ``lint`` subcommand (see ``repro.cli.build_parser``)."""
    if args.explain:
        return _explain(args.explain)
    if args.list_rules:
        return _list_rules()

    root = os.path.abspath(args.root)
    if not args.paths and not any(
        os.path.isdir(os.path.join(root, sub)) for sub in ("src", "tests")
    ):
        print(
            f"nothing to lint: no src/ or tests/ under {root} "
            f"(pass explicit paths or --root)",
            file=sys.stderr,
        )
        return 2

    result = run_lint(
        root,
        paths=args.paths or None,
        baseline_path=args.baseline,
    )

    if args.write_baseline:
        target = args.baseline or os.path.join(root, DEFAULT_BASELINE_NAME)
        save_baseline(target, result.findings + result.suppressed)
        print(
            f"wrote {len(result.findings) + len(result.suppressed)} "
            f"baseline entries to {target}"
        )
        return 0

    if args.format == "json":
        payload = {
            "version": 1,
            "files_checked": result.files_checked,
            "findings": [f.as_dict() for f in result.findings],
            "suppressed": len(result.suppressed),
            "parse_errors": result.parse_errors,
            "exit_code": result.exit_code,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return result.exit_code

    lines: List[str] = []
    for error in result.parse_errors:
        lines.append(f"parse error: {error}")
    for finding in result.findings:
        lines.append(finding.render())
    for line in lines:
        print(line)
    suppressed_note = (
        f" ({len(result.suppressed)} suppressed by baseline)"
        if result.suppressed
        else ""
    )
    verdict = (
        "clean" if result.exit_code == 0
        else f"{len(result.findings)} finding"
        + ("s" if len(result.findings) != 1 else "")
    )
    print(
        f"reprolint: {verdict}{suppressed_note}, "
        f"{result.files_checked} files checked"
    )
    return result.exit_code
