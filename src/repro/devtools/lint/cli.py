"""Rendering and command handling for ``python -m repro lint``.

The argparse wiring lives in :mod:`repro.cli`; this module turns the
parsed namespace into a lint run and renders the result as human text,
JSON or SARIF.  Exit codes: 0 clean, 1 findings (or parse errors), 2
usage errors.

Modes:

* default — every rule over ``src/`` and ``tests/``, whole-program
  rules included, rules fanned out over forked workers;
* ``--changed`` — pre-commit mode: only files differing from git HEAD
  (plus untracked ones) are linted with the per-file rules, parses come
  from the warm AST index, so the run is sub-second;
* ``--no-program`` — per-file rules only (the CI matrix runs this on
  every interpreter; the whole-program pass runs once on one).
"""

from __future__ import annotations

import inspect
import json
import os
import subprocess
import sys
from typing import List, Optional, Set

from .astindex import DEFAULT_INDEX_DIR, AstIndex
from .engine import DEFAULT_BASELINE_NAME, run_lint
from .findings import save_baseline
from .rules import RULES, all_rules, rule_by_id
from .sarif import render_sarif

__all__ = ["run_lint_command"]


def _explain(rule_id: str) -> int:
    try:
        rule = rule_by_id(rule_id)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    doc = inspect.getdoc(type(rule)) or "(no documentation)"
    print(f"{rule.id} {rule.name} [{rule.severity}]")
    print()
    print(doc)
    return 0


def _list_rules() -> int:
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]()
        doc = inspect.getdoc(RULES[rule_id]) or ""
        headline = doc.splitlines()[0] if doc else ""
        print(f"{rule.id}  {rule.name:<24s} {headline}")
    return 0


def _git_changed_paths(root: str) -> Optional[Set[str]]:
    """Repo-relative python paths differing from HEAD (plus untracked).

    Returns ``None`` when git is unavailable or ``root`` is not a
    work tree — the caller falls back to a full lint.
    """
    def run(*argv: str) -> List[str]:
        proc = subprocess.run(
            ["git", "-C", root, *argv],
            capture_output=True, text=True, check=True,
        )
        return [line.strip() for line in proc.stdout.splitlines()
                if line.strip()]

    try:
        changed = set(run("diff", "--name-only", "--relative", "HEAD", "--"))
        changed.update(run("ls-files", "--others", "--exclude-standard"))
    except (OSError, subprocess.CalledProcessError):
        return None
    return {
        path for path in changed
        if path.endswith(".py")
        and path.split("/", 1)[0] in ("src", "tests")
        and os.path.exists(os.path.join(root, path))
    }


def run_lint_command(args) -> int:
    """Handle the ``lint`` subcommand (see ``repro.cli.build_parser``)."""
    if args.explain:
        return _explain(args.explain)
    if args.list_rules:
        return _list_rules()

    root = os.path.abspath(args.root)
    if not args.paths and not any(
        os.path.isdir(os.path.join(root, sub)) for sub in ("src", "tests")
    ):
        print(
            f"nothing to lint: no src/ or tests/ under {root} "
            f"(pass explicit paths or --root)",
            file=sys.stderr,
        )
        return 2

    index: Optional[AstIndex] = None
    if not args.no_index_cache:
        index = AstIndex(os.path.join(root, DEFAULT_INDEX_DIR))

    rules = all_rules()
    if args.no_program:
        rules = [rule for rule in rules if not rule.requires_program]

    paths = args.paths or None
    only_paths: Optional[Set[str]] = None
    if getattr(args, "changed", False):
        changed = _git_changed_paths(root)
        if changed is None:
            print("lint --changed: not a git work tree, linting everything",
                  file=sys.stderr)
        elif not changed:
            print("reprolint: clean, 0 changed files")
            return 0
        else:
            # Pre-commit mode: per-file rules over just the changed
            # files.  Whole-program rules need the full tree and run in
            # CI; skipping them here is what keeps this sub-second.
            rules = [rule for rule in rules if not rule.requires_program]
            paths = sorted(changed)
            only_paths = changed

    jobs = args.jobs
    if jobs <= 0:
        jobs = min(4, os.cpu_count() or 1)

    result = run_lint(
        root,
        paths=paths,
        baseline_path=args.baseline,
        rules=rules,
        index=index,
        jobs=jobs,
        only_paths=only_paths,
    )

    if args.write_baseline:
        target = args.baseline or os.path.join(root, DEFAULT_BASELINE_NAME)
        save_baseline(target, result.findings + result.suppressed)
        print(
            f"wrote {len(result.findings) + len(result.suppressed)} "
            f"baseline entries to {target}"
        )
        return 0

    if args.format == "json":
        payload = {
            "version": 1,
            "files_checked": result.files_checked,
            "findings": [f.as_dict() for f in result.findings],
            "suppressed": len(result.suppressed),
            "parse_errors": result.parse_errors,
            "exit_code": result.exit_code,
            "index_hits": result.index_hits,
            "index_misses": result.index_misses,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return result.exit_code

    if args.format == "sarif":
        print(json.dumps(render_sarif(result), indent=2, sort_keys=True))
        return result.exit_code

    lines: List[str] = []
    for error in result.parse_errors:
        lines.append(f"parse error: {error}")
    for finding in result.findings:
        lines.append(finding.render())
    for line in lines:
        print(line)
    suppressed_note = (
        f" ({len(result.suppressed)} suppressed by baseline)"
        if result.suppressed
        else ""
    )
    index_note = (
        f", ast-index {result.index_hits} hits / "
        f"{result.index_misses} parses"
        if index is not None
        else ""
    )
    verdict = (
        "clean" if result.exit_code == 0
        else f"{len(result.findings)} finding"
        + ("s" if len(result.findings) != 1 else "")
    )
    print(
        f"reprolint: {verdict}{suppressed_note}, "
        f"{result.files_checked} files checked{index_note}"
    )
    return result.exit_code
