"""Finding records and the committed baseline of grandfathered findings.

A finding is one rule violation at one source location.  The baseline
file (``lint-baseline.txt`` at the repo root) lists findings that predate
the linter and are tolerated until fixed; its keys deliberately omit line
numbers so unrelated edits higher up in a file don't invalidate entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

__all__ = ["Finding", "load_baseline", "save_baseline", "split_by_baseline"]

#: Column separator in baseline lines.  Messages never contain tabs.
_SEP = "\t"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: where it is, which rule, and why it matters."""

    path: str       # repo-relative posix path, e.g. "src/repro/cli.py"
    line: int       # 1-based
    col: int        # 0-based, as reported by ast
    rule: str       # rule id, e.g. "R001"
    severity: str   # "error" or "warning"
    message: str

    def key(self) -> str:
        """Baseline identity: path + rule + message, line-number free."""
        return _SEP.join((self.rule, self.path, self.message))

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1} "
            f"{self.rule} {self.severity}: {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


def load_baseline(path: str) -> Set[str]:
    """Read baseline keys from ``path``; missing file means empty baseline."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except FileNotFoundError:
        return set()
    keys = set()
    for raw in lines:
        line = raw.strip()
        if line and not line.startswith("#"):
            keys.add(line)
    return keys


def save_baseline(path: str, findings: Iterable[Finding]) -> None:
    """Write the baseline for ``findings`` (sorted, deduplicated)."""
    keys = sorted({f.key() for f in findings})
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            "# reprolint baseline: grandfathered findings, one per line as\n"
            "# <rule>\\t<path>\\t<message>.  Regenerate with\n"
            "#   python -m repro lint --write-baseline\n"
            "# Fix entries rather than adding new ones.\n"
        )
        for key in keys:
            handle.write(key + "\n")


def split_by_baseline(
    findings: Iterable[Finding], baseline: Set[str]
) -> "tuple[List[Finding], List[Finding]]":
    """Partition findings into (active, suppressed-by-baseline)."""
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        (suppressed if finding.key() in baseline else active).append(finding)
    return active, suppressed
