"""Content-addressed AST index: parse each file once, ever.

Whole-program rules make the linter read every module in the tree, but
between two lint runs almost nothing changes.  The index keys each
file's parsed :class:`ast.Module` by the sha256 of its *bytes* and keeps
the pickled tree on disk (default ``<root>/.reprolint-cache``), so a
warm run unpickles instead of re-parsing and an edited file invalidates
exactly itself.  ``hits`` / ``misses`` counters make the behaviour
assertable — the pre-commit ``repro lint --changed`` path is sub-second
because a one-file edit costs one parse.

Cache entries are append-only and self-verifying (the content hash *is*
the name); ``prune`` drops entries no current file hashes to.  Any
unpicklable/corrupt entry is treated as a miss and rewritten — the
index can always be deleted wholesale.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pickle
import sys
from typing import Optional, Set

__all__ = ["AstIndex", "DEFAULT_INDEX_DIR"]

#: Directory name of the on-disk index at a lint root.
DEFAULT_INDEX_DIR = ".reprolint-cache"

#: Bump when the pickle layout must be invalidated wholesale.  The
#: interpreter version participates because ast pickles are not stable
#: across feature releases.
_FORMAT = f"v1-py{sys.version_info[0]}.{sys.version_info[1]}"


class AstIndex:
    """Parse-or-recall cache for python sources, keyed by content hash."""

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self.cache_dir = cache_dir
        self.hits = 0
        self.misses = 0
        self._seen: Set[str] = set()
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    def _entry_path(self, digest: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{digest}-{_FORMAT}.astpkl")

    def parse(self, path: str, text: str) -> ast.Module:
        """The parsed tree for ``text``; cached by content, not by path.

        ``path`` is only used for syntax-error messages (and must stay
        repo-relative so errors render identically warm or cold).
        Raises ``SyntaxError``/``ValueError`` exactly like ``ast.parse``.
        """
        if not self.cache_dir:
            self.misses += 1
            return ast.parse(text, filename=path)
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        self._seen.add(digest)
        entry = self._entry_path(digest)
        try:
            with open(entry, "rb") as handle:
                tree = pickle.load(handle)
            if isinstance(tree, ast.Module):
                self.hits += 1
                return tree
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            pass  # missing or corrupt entry: fall through to a parse
        self.misses += 1
        tree = ast.parse(text, filename=path)
        tmp = f"{entry}.tmp-{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(tree, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, entry)
        except OSError:
            # A read-only checkout still lints; it just never warms up.
            try:
                os.remove(tmp)
            except OSError:
                pass
        return tree

    def prune(self) -> int:
        """Drop entries not hashed by any ``parse`` call this run."""
        if not self.cache_dir:
            return 0
        removed = 0
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return 0
        for name in names:
            if not name.endswith(".astpkl"):
                continue
            digest = name.split("-", 1)[0]
            if digest not in self._seen:
                try:
                    os.remove(os.path.join(self.cache_dir, name))
                    removed += 1
                except OSError:
                    pass
        return removed
