"""docscheck: keep the documentation site honest.

Scans ``docs/**/*.md`` and ``README.md`` for two classes of rot:

* **dead relative links** — ``[text](path.md)`` targets that no longer
  exist on disk (external ``http(s)://`` / ``mailto:`` links and pure
  ``#anchor`` fragments are ignored);
* **dead module references** — inline-code mentions of ``repro.*``
  (e.g. ```` `repro.obs.tracer` ````) that resolve to nothing under
  ``src/``.  A reference may end in up to two attribute segments: a
  ``ClassName``/dunder tail is accepted structurally, a lowercase tail
  must appear in the owning module's ``__all__`` (parsed statically, the
  package is never imported).

Fenced code blocks are skipped entirely, so tutorial shell transcripts
and Python examples never trip the checker.  ``python -m repro
docscheck`` exits non-zero on any finding; CI runs it in the docs job so
a renamed module or moved page fails the build instead of shipping a
broken site.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "DocFinding",
    "check_file",
    "check_repo",
    "docs_files",
    "run_docscheck_command",
]

#: Markdown inline link: ``[text](target)``.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)<>\s]+)\)")

#: Inline-code reference to the package: ```` `repro.something[...]` ````.
MODULE_RE = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)`")

#: Link targets that are never checked against the working tree.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


@dataclass
class DocFinding:
    """One problem in one documentation file."""

    path: str
    line: int
    kind: str  # "dead-link" | "dead-module"
    detail: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.kind}: {self.detail}"


def _module_exists(parts: Sequence[str], src: str) -> bool:
    """True when ``parts`` names a package directory or module file."""
    path = os.path.join(src, *parts)
    return os.path.isdir(path) or os.path.isfile(path + ".py")


def _module_all(parts: Sequence[str], src: str,
                cache: Dict[str, List[str]]) -> List[str]:
    """Statically parsed ``__all__`` of the module named by ``parts``."""
    key = ".".join(parts)
    if key in cache:
        return cache[key]
    path = os.path.join(src, *parts)
    path = os.path.join(path, "__init__.py") if os.path.isdir(path) else path + ".py"
    names: List[str] = []
    try:
        tree = ast.parse(open(path, "r", encoding="utf-8").read())
    except (OSError, SyntaxError):
        tree = None
    if tree is not None:
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" not in targets:
                continue
            if isinstance(node.value, (ast.List, ast.Tuple)):
                names = [
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
    cache[key] = names
    return names


def _module_ref_ok(ref: str, src: str, cache: Dict[str, List[str]]) -> bool:
    """Does ``ref`` (``repro.x.y``) resolve to a module or exported name?"""
    parts = ref.split(".")
    resolved = 0
    for end in range(len(parts), 0, -1):
        if _module_exists(parts[:end], src):
            resolved = end
            break
    if resolved == len(parts):
        return True  # the whole reference is a module/package
    if resolved == 0:
        return False  # not even ``repro`` found — wrong --root
    tail = parts[resolved:]
    if len(tail) > 2:
        return False
    head = tail[0]
    if head.startswith("__") or head != head.lower():
        return True  # ClassName / dunder attribute — structural accept
    if len(tail) == 1 and head in _module_all(parts[:resolved], src, cache):
        return True
    return False


def check_file(path: str, root: str) -> List[DocFinding]:
    """Check one markdown file; paths in findings are root-relative."""
    src = os.path.join(root, "src")
    relative = os.path.relpath(path, root)
    findings: List[DocFinding] = []
    all_cache: Dict[str, List[str]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()

    in_fence = False
    for number, line in enumerate(lines, start=1):
        stripped = line.lstrip()
        if stripped.startswith("```") or stripped.startswith("~~~"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            target = target.split("#", 1)[0].split("?", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target)
            )
            if not os.path.exists(resolved):
                findings.append(
                    DocFinding(relative, number, "dead-link",
                               f"target does not exist: {target}")
                )
        for match in MODULE_RE.finditer(line):
            reference = match.group(1)
            if not _module_ref_ok(reference, src, all_cache):
                findings.append(
                    DocFinding(relative, number, "dead-module",
                               f"unresolvable reference: {reference}")
                )
    return findings


def docs_files(root: str) -> List[str]:
    """Every file docscheck covers: ``docs/**/*.md`` plus ``README.md``."""
    found: List[str] = []
    readme = os.path.join(root, "README.md")
    if os.path.isfile(readme):
        found.append(readme)
    docs = os.path.join(root, "docs")
    for base, _dirs, names in os.walk(docs):
        for name in sorted(names):
            if name.endswith(".md"):
                found.append(os.path.join(base, name))
    return found


def check_repo(root: str = ".") -> List[DocFinding]:
    """Run docscheck over the repository rooted at ``root``."""
    findings: List[DocFinding] = []
    for path in docs_files(root):
        findings.extend(check_file(path, root))
    return findings


def run_docscheck_command(args) -> int:
    """Back the ``python -m repro docscheck`` subcommand."""
    root = getattr(args, "root", ".") or "."
    findings = check_repo(root)
    output_format = getattr(args, "format", "text")
    if output_format == "json":
        print(json.dumps([asdict(f) for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format())
        checked = len(docs_files(root))
        status = "failed" if findings else "ok"
        print(f"docscheck: {status} — {checked} files, {len(findings)} findings")
    return 1 if findings else 0
