"""Deterministic fault injection: prove the robustness layer works.

The fault-tolerance claims in :mod:`repro.robust` are only worth
anything if something exercises them.  This harness injects the four
failure shapes the cache and runner are hardened against, all
deterministic (seeded where randomness is involved) so a failing
robustness test reproduces bit-for-bit:

* **truncated ``data.npz``** — :func:`truncate_npz` cuts the archive
  short; :func:`scramble_npz` flips bytes in the middle (caught by the
  checksum even when the zip directory survives);
* **malformed / partial ``meta.json``** — :func:`corrupt_meta` writes
  non-JSON, drops required keys, or falsifies the stored checksum;
* **mid-``save_result`` crashes** — :func:`crash_on` arms the named
  crash points (:mod:`repro.robust.crashpoints`) inside the cache's
  write path;
* **N-th-call experiment failures** — :func:`install_flaky_experiment`
  wraps a registry entry so its first N invocations (per process)
  raise :class:`InjectedFault`, which is how the runner's retry,
  backoff and degraded-failure paths are driven.

Everything can also be armed from the environment: set
``REPRO_FAULTS="experiment:table3:2,crash:cache.save.before_publish:1"``
and the CLI arms the directives at startup (``arm_from_env``), so
``make test-faults`` and manual ``repro report`` runs can inject faults
without touching code.  :func:`reset` restores the pristine state.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List, Optional

import numpy as np

from ..robust.crashpoints import (
    InjectedCrash,
    arm_crash_point,
    disarm_all_crash_points,
)

__all__ = [
    "ENV_VAR",
    "InjectedFault",
    "InjectedCrash",
    "truncate_npz",
    "scramble_npz",
    "corrupt_meta",
    "crash_on",
    "install_flaky_experiment",
    "arm_from_env",
    "reset",
]

#: Environment variable the CLI reads to arm faults at startup.
ENV_VAR = "REPRO_FAULTS"

#: Registry entries this harness has wrapped: experiment id -> original.
_WRAPPED: Dict[str, Callable] = {}


class InjectedFault(RuntimeError):
    """A deliberate failure raised by the harness (never in production)."""


# --------------------------------------------------------------------- #
# cache-entry corruption
# --------------------------------------------------------------------- #


def truncate_npz(entry_dir: str, fraction: float = 0.5) -> int:
    """Truncate ``<entry>/data.npz`` to ``fraction`` of its size.

    Returns the new size in bytes (at least 1, so the file still exists
    and the failure is a *corrupt read*, not a missing file).
    """
    path = os.path.join(entry_dir, "data.npz")
    size = os.path.getsize(path)
    keep = max(1, int(size * fraction))
    os.truncate(path, keep)
    return keep


def scramble_npz(entry_dir: str, n_bytes: int = 64, seed: int = 0) -> None:
    """Overwrite ``n_bytes`` in the middle of ``data.npz`` with seeded noise.

    Unlike truncation this keeps the zip end-of-central-directory intact,
    so only the sha256 checksum (or a decompression error) can catch it.
    """
    path = os.path.join(entry_dir, "data.npz")
    size = os.path.getsize(path)
    rng = np.random.default_rng(seed)
    offset = max(0, size // 2 - n_bytes // 2)
    noise = rng.integers(0, 256, size=min(n_bytes, size), dtype=np.uint8)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        handle.write(noise.tobytes())


def corrupt_meta(entry_dir: str, mode: str = "malformed") -> None:
    """Damage ``<entry>/meta.json`` in one of three ways.

    ``malformed`` writes syntactically invalid JSON; ``partial`` keeps
    valid JSON but drops the ``checksums`` and ``counts`` keys (a torn
    legacy write); ``checksum`` falsifies the stored ``data.npz``
    digest so the archive no longer verifies.
    """
    path = os.path.join(entry_dir, "meta.json")
    if mode == "malformed":
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"version": 2, "scale": ')  # cut mid-value
        return
    with open(path, "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    if mode == "partial":
        meta.pop("checksums", None)
        meta.pop("counts", None)
    elif mode == "checksum":
        meta["checksums"] = {"data.npz": "0" * 64}
    else:
        raise ValueError(f"unknown corrupt_meta mode {mode!r}")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)


# --------------------------------------------------------------------- #
# crash points and flaky experiments
# --------------------------------------------------------------------- #


def crash_on(point: str, at_call: int = 1) -> None:
    """Arm crash point ``point`` to raise :class:`InjectedCrash`.

    The cache's write path exposes ``cache.save.mid_write`` (after
    ``data.npz`` is staged, before ``meta.json``) and
    ``cache.save.before_publish`` (everything staged, nothing
    published); see :mod:`repro.synth.cache`.
    """
    arm_crash_point(point, at_call=at_call)


def install_flaky_experiment(experiment_id: str, fail_times: int = 1) -> None:
    """Make experiment ``experiment_id`` raise on its first N calls.

    The wrapper counts invocations *per process*: under a fork pool each
    worker inherits the armed wrapper with its counter at zero, so the
    in-worker retry sequence observes the same deterministic failures a
    serial run would.  Re-installing replaces the previous wrapper (the
    counter restarts); :func:`reset` restores the original callable.
    """
    from ..report.experiments import EXPERIMENTS

    if fail_times < 1:
        raise ValueError("fail_times must be >= 1")
    original = _WRAPPED.get(experiment_id) or EXPERIMENTS[experiment_id]
    calls = {"n": 0}

    def _flaky(ctx):  # noqa: ANN001 - mirrors experiment signature
        calls["n"] += 1
        if calls["n"] <= fail_times:
            raise InjectedFault(
                f"injected failure {calls['n']}/{fail_times} "
                f"in experiment {experiment_id!r}"
            )
        return original(ctx)

    _WRAPPED[experiment_id] = original
    EXPERIMENTS[experiment_id] = _flaky


def reset() -> None:
    """Disarm everything: crash points and wrapped registry entries."""
    disarm_all_crash_points()
    if _WRAPPED:
        from ..report.experiments import EXPERIMENTS

        for experiment_id, original in _WRAPPED.items():
            EXPERIMENTS[experiment_id] = original
        _WRAPPED.clear()


# --------------------------------------------------------------------- #
# environment driver
# --------------------------------------------------------------------- #


def arm_from_env(environ: Optional[Dict[str, str]] = None) -> List[str]:
    """Arm the comma-separated directives in ``$REPRO_FAULTS``.

    Grammar (counts default to 1)::

        experiment:<id>[:<fail_times>]   first N calls raise InjectedFault
        crash:<point>[:<at_call>]        crash point raises on call N

    Previously armed faults are reset first, so re-invoking the CLI in
    one process re-arms cleanly.  Returns the directives armed (empty
    when the variable is unset), raising ``ValueError`` on a malformed
    spec — a silently ignored fault would fake a passing robustness run.
    """
    spec = (environ if environ is not None else os.environ).get(ENV_VAR, "")
    if not spec.strip():
        return []
    reset()
    armed: List[str] = []
    for directive in spec.split(","):
        directive = directive.strip()
        if not directive:
            continue
        parts = directive.split(":")
        kind = parts[0]
        if kind == "experiment" and len(parts) in (2, 3):
            count = int(parts[2]) if len(parts) == 3 else 1
            install_flaky_experiment(parts[1], fail_times=count)
        elif kind == "crash" and len(parts) in (2, 3):
            count = int(parts[2]) if len(parts) == 3 else 1
            crash_on(parts[1], at_call=count)
        else:
            raise ValueError(
                f"malformed {ENV_VAR} directive {directive!r}; expected "
                f"'experiment:<id>[:<n>]' or 'crash:<point>[:<n>]'"
            )
        armed.append(directive)
    return armed
