"""Developer tooling that ships with the library but never runs in analyses.

Currently one subpackage: :mod:`repro.devtools.lint` ("reprolint"), the
project-specific static-analysis pass enforcing the reproduction's
invariants (seeded randomness, wall-clock hygiene, fast/object parity,
era single-source-of-truth).  Exposed on the command line as
``python -m repro lint``.
"""

from __future__ import annotations

__all__ = ["lint"]
