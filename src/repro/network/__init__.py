"""Contract-graph construction, degree analyses and power-law fitting."""

from .degrees import (
    DegreeDistributions,
    DegreeGrowthPoint,
    dataset_degree_distributions,
    degree_distributions,
    degree_growth,
)
from .graph import DEGREE_KINDS, ContractGraph
from .metrics import GraphMetrics, graph_metrics, random_baseline_metrics
from .powerlaw import PowerLawFit, fit_power_law, loglik_ratio_vs_exponential

__all__ = [
    "DegreeDistributions",
    "DegreeGrowthPoint",
    "dataset_degree_distributions",
    "degree_distributions",
    "degree_growth",
    "DEGREE_KINDS",
    "ContractGraph",
    "GraphMetrics",
    "graph_metrics",
    "random_baseline_metrics",
    "PowerLawFit",
    "fit_power_law",
    "loglik_ratio_vs_exponential",
]
