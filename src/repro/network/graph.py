"""The contractual social graph (§4.2's network centralisation analysis).

Definitions from the paper: users *n* and *m* share a **raw** connection
if they share at least one contract; an **inbound** connection is made
from *n* to *m* if *m* accepts a contract from *n*; an **outbound**
connection from *n* to *m* if *n* initiates a contract to *m*.  For
bidirectional contracts (EXCHANGE, TRADE) both parties receive both an
inbound and an outbound connection.

Degrees count *distinct* counterparties, so they measure connectivity
(influence), not volume.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Set

import networkx as nx
import numpy as np

from ..core.entities import Contract

__all__ = ["ContractGraph", "DEGREE_KINDS"]

DEGREE_KINDS = ("raw", "inbound", "outbound")


class ContractGraph:
    """Raw/inbound/outbound adjacency built from a contract list.

    The node set is every user party to at least one of the supplied
    contracts, so users who only ever accept contracts appear with an
    outbound degree of zero (the paper's Figure 7 zero-point).
    """

    def __init__(self, contracts: Iterable[Contract]) -> None:
        self._raw: Dict[int, Set[int]] = defaultdict(set)
        self._inbound: Dict[int, Set[int]] = defaultdict(set)
        self._outbound: Dict[int, Set[int]] = defaultdict(set)
        self._nodes: Set[int] = set()
        self._n_contracts = 0
        for contract in contracts:
            self.add_contract(contract)

    def add_contract(self, contract: Contract) -> None:
        """Incorporate one contract's connections (incremental build)."""
        maker, taker = contract.maker_id, contract.taker_id
        self._nodes.add(maker)
        self._nodes.add(taker)
        self._raw[maker].add(taker)
        self._raw[taker].add(maker)
        self._outbound[maker].add(taker)
        self._inbound[taker].add(maker)
        if contract.ctype.bidirectional:
            self._outbound[taker].add(maker)
            self._inbound[maker].add(taker)
        self._n_contracts += 1

    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> Set[int]:
        return self._nodes

    @property
    def n_contracts(self) -> int:
        return self._n_contracts

    def __len__(self) -> int:
        return len(self._nodes)

    def degree(self, user_id: int, kind: str = "raw") -> int:
        """Degree of one node (0 for unknown users)."""
        return len(self._adjacency(kind).get(user_id, ()))

    def degrees(self, kind: str = "raw") -> Dict[int, int]:
        """Map user id -> degree over the full node set."""
        adjacency = self._adjacency(kind)
        return {node: len(adjacency.get(node, ())) for node in self._nodes}

    def degree_array(self, kind: str = "raw") -> np.ndarray:
        """Degrees as an array (order: ascending user id, deterministic)."""
        adjacency = self._adjacency(kind)
        return np.asarray(
            [len(adjacency.get(node, ())) for node in sorted(self._nodes)],
            dtype=np.int64,
        )

    def max_degree(self, kind: str = "raw") -> int:
        array = self.degree_array(kind)
        return int(array.max()) if len(array) else 0

    def average_degree(self, kind: str = "raw") -> float:
        array = self.degree_array(kind)
        return float(array.mean()) if len(array) else 0.0

    def neighbors(self, user_id: int, kind: str = "raw") -> Set[int]:
        return set(self._adjacency(kind).get(user_id, ()))

    # ------------------------------------------------------------------ #

    def to_networkx(self, kind: str = "raw") -> "nx.Graph":
        """Export as a networkx graph (directed for inbound/outbound)."""
        if kind == "raw":
            graph: nx.Graph = nx.Graph()
            graph.add_nodes_from(self._nodes)
            for node, neighbors in self._raw.items():
                graph.add_edges_from((node, other) for other in neighbors)
            return graph
        digraph = nx.DiGraph()
        digraph.add_nodes_from(self._nodes)
        if kind == "outbound":
            for node, targets in self._outbound.items():
                digraph.add_edges_from((node, t) for t in targets)
        elif kind == "inbound":
            for node, sources in self._inbound.items():
                digraph.add_edges_from((s, node) for s in sources)
        else:
            raise ValueError(f"unknown degree kind: {kind!r}")
        return digraph

    def _adjacency(self, kind: str) -> Dict[int, Set[int]]:
        if kind == "raw":
            return self._raw
        if kind == "inbound":
            return self._inbound
        if kind == "outbound":
            return self._outbound
        raise ValueError(f"unknown degree kind: {kind!r} (use {DEGREE_KINDS})")
