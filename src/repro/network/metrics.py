"""Additional graph metrics for the scale-free discussion (§4.2).

The paper argues the contract graph is "a naturally grown scale-free
network, which is different to randomly created ones".  Beyond the degree
distribution, two standard diagnostics separate grown markets from random
graphs:

* **degree assortativity** — buyer/seller markets are disassortative
  (hubs connect to leaves, r < 0), while Erdős–Rényi graphs sit near 0;
* **clustering coefficient** — trade intermediated by hubs yields low
  clustering relative to social (friendship) graphs.

Both are computed on the raw (undirected) contract graph via networkx,
with a degree-preserving comparison against a random graph of the same
size for context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import networkx as nx
import numpy as np

from ..core.entities import Contract
from .graph import ContractGraph

__all__ = ["GraphMetrics", "graph_metrics", "random_baseline_metrics"]


@dataclass(frozen=True)
class GraphMetrics:
    """Structural diagnostics of one contract graph."""

    n_nodes: int
    n_edges: int
    degree_assortativity: float
    average_clustering: float
    density: float
    largest_component_share: float


def _metrics_of(graph: "nx.Graph") -> GraphMetrics:
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    if n < 3 or m < 2:
        raise ValueError("graph too small for structural metrics")
    try:
        assortativity = float(nx.degree_assortativity_coefficient(graph))
    except (ValueError, ZeroDivisionError):
        assortativity = 0.0
    clustering = float(nx.average_clustering(graph))
    components = list(nx.connected_components(graph))
    largest = max(len(c) for c in components) if components else 0
    return GraphMetrics(
        n_nodes=n,
        n_edges=m,
        degree_assortativity=assortativity,
        average_clustering=clustering,
        density=float(nx.density(graph)),
        largest_component_share=largest / n,
    )


def graph_metrics(contracts: Sequence[Contract]) -> GraphMetrics:
    """Structural metrics of the raw contract graph."""
    return _metrics_of(ContractGraph(contracts).to_networkx("raw"))


def random_baseline_metrics(
    contracts: Sequence[Contract], seed: int = 0
) -> GraphMetrics:
    """The same metrics on an Erdős–Rényi graph of matching size.

    Gives the "randomly created" comparison the paper invokes: the grown
    market should be markedly more disassortative and concentrated than
    this baseline.
    """
    grown = ContractGraph(contracts).to_networkx("raw")
    n = grown.number_of_nodes()
    m = grown.number_of_edges()
    random_graph = nx.gnm_random_graph(n, m, seed=seed)
    return _metrics_of(random_graph)
