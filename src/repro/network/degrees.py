"""Degree distributions (Figure 7) and degree growth over time (Figure 8).

Both figures are computed twice: over *created* contracts (everything in
the dataset) and over *completed* contracts only.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.columns import month_from_index
from ..core.dataset import MarketDataset
from ..core.kernels import count_dispatch
from ..core.entities import Contract
from ..core.timeutils import Month, month_of
from .graph import DEGREE_KINDS, ContractGraph

__all__ = [
    "DegreeDistributions",
    "DegreeGrowthPoint",
    "degree_distributions",
    "dataset_degree_distributions",
    "degree_growth",
]


@dataclass
class DegreeDistributions:
    """Figure 7's data: degree histograms for one contract set.

    ``histogram[kind][d]`` is the number of users with degree ``d``;
    ``max_degree[kind]`` the highest degree observed.
    """

    histogram: Dict[str, Dict[int, int]]
    max_degree: Dict[str, int]
    average_degree: Dict[str, float]
    n_users: int
    n_contracts: int

    def truncated(self, kind: str, limit: int = 15) -> Dict[int, int]:
        """Histogram restricted to degrees 0..limit (as plotted)."""
        return {
            degree: count
            for degree, count in sorted(self.histogram[kind].items())
            if degree <= limit
        }


def degree_distributions(contracts: Sequence[Contract]) -> DegreeDistributions:
    """Compute raw/inbound/outbound degree distributions for a contract set."""
    graph = ContractGraph(contracts)
    histogram: Dict[str, Dict[int, int]] = {}
    max_degree: Dict[str, int] = {}
    average_degree: Dict[str, float] = {}
    for kind in DEGREE_KINDS:
        degrees = graph.degree_array(kind)
        histogram[kind] = dict(sorted(Counter(degrees.tolist()).items()))
        max_degree[kind] = int(degrees.max()) if len(degrees) else 0
        average_degree[kind] = float(degrees.mean()) if len(degrees) else 0.0
    return DegreeDistributions(
        histogram=histogram,
        max_degree=max_degree,
        average_degree=average_degree,
        n_users=len(graph),
        n_contracts=graph.n_contracts,
    )


def _edge_arrays(
    store, mask: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(maker, taker, bidirectional) code columns for the selected rows."""
    if mask is None:
        return store.maker_code, store.taker_code, store.is_bidirectional
    return store.maker_code[mask], store.taker_code[mask], store.is_bidirectional[mask]


def _unique_undirected(
    maker: np.ndarray, taker: np.ndarray, n_users: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct undirected edges as (low, high) endpoint arrays."""
    low = np.minimum(maker, taker).astype(np.int64)
    high = np.maximum(maker, taker).astype(np.int64)
    keys = np.unique(low * n_users + high)
    return keys // n_users, keys % n_users


def _unique_directed(
    maker: np.ndarray, taker: np.ndarray, bidirectional: np.ndarray, n_users: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct directed edges (src, dst); bidirectional rows add both."""
    src = np.concatenate([maker, taker[bidirectional]]).astype(np.int64)
    dst = np.concatenate([taker, maker[bidirectional]]).astype(np.int64)
    keys = np.unique(src * n_users + dst)
    return keys // n_users, keys % n_users


def _histogram_of(degrees: np.ndarray) -> Dict[int, int]:
    values, counts = np.unique(degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def dataset_degree_distributions(
    dataset: MarketDataset, completed_only: bool = False, fast: bool = True
) -> DegreeDistributions:
    """Figure 7 over a whole dataset (created or completed contracts).

    ``fast`` derives distinct-counterparty degrees from the columnar
    store: edges are deduplicated with one ``np.unique`` over packed
    endpoint keys and degrees read off with ``np.bincount`` — no Python
    per-contract loop and no set-of-sets adjacency.
    """
    count_dispatch(fast)
    if not fast:
        contracts = dataset.completed() if completed_only else dataset.contracts
        return degree_distributions(contracts)

    store = dataset.columns()
    mask = store.is_complete if completed_only else None
    maker, taker, bidirectional = _edge_arrays(store, mask)
    n_contracts = len(maker)
    nodes = np.unique(np.concatenate([maker, taker]))
    if not len(nodes):
        return DegreeDistributions(
            histogram={kind: {} for kind in DEGREE_KINDS},
            max_degree={kind: 0 for kind in DEGREE_KINDS},
            average_degree={kind: 0.0 for kind in DEGREE_KINDS},
            n_users=0,
            n_contracts=0,
        )

    n_users = store.n_users
    low, high = _unique_undirected(maker, taker, n_users)
    # A self-contract contributes a single entry to its own raw set.
    raw_endpoints = np.concatenate([low, high[high != low]])
    src, dst = _unique_directed(maker, taker, bidirectional, n_users)

    per_kind = {
        "raw": np.bincount(raw_endpoints, minlength=n_users)[nodes],
        "inbound": np.bincount(dst, minlength=n_users)[nodes],
        "outbound": np.bincount(src, minlength=n_users)[nodes],
    }
    histogram: Dict[str, Dict[int, int]] = {}
    max_degree: Dict[str, int] = {}
    average_degree: Dict[str, float] = {}
    for kind in DEGREE_KINDS:
        degrees = per_kind[kind]
        histogram[kind] = _histogram_of(degrees)
        max_degree[kind] = int(degrees.max())
        average_degree[kind] = float(degrees.mean())
    return DegreeDistributions(
        histogram=histogram,
        max_degree=max_degree,
        average_degree=average_degree,
        n_users=int(len(nodes)),
        n_contracts=n_contracts,
    )


@dataclass
class DegreeGrowthPoint:
    """One month of Figure 8: cumulative-network degree summaries."""

    month: Month
    average_raw: float
    max_raw: int
    max_inbound: int
    max_outbound: int


def _first_months(
    keys: np.ndarray, months: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Unique keys plus the earliest month index each key appears in."""
    unique, inverse = np.unique(keys, return_inverse=True)
    first = np.full(len(unique), np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(first, inverse, months)
    return unique, first


def degree_growth(
    dataset: MarketDataset, completed_only: bool = False, fast: bool = True
) -> List[DegreeGrowthPoint]:
    """Cumulative degree growth month by month (Figure 8).

    The network at month *m* contains every qualifying contract created up
    to the end of *m*.  ``fast`` precomputes the first month each distinct
    edge and node appears, then replays ≤ the number of months as batched
    ``np.add.at`` updates of running degree arrays; ``fast=False`` keeps
    the incremental :class:`ContractGraph` reference.
    """
    count_dispatch(fast)
    if fast:
        store = dataset.columns()
        mask = store.is_complete if completed_only else None
        maker, taker, bidirectional = _edge_arrays(store, mask)
        if not len(maker):
            return []
        months = (store.month_idx[mask] if mask is not None else store.month_idx).astype(
            np.int64
        )
        n_users = store.n_users
        maker64, taker64 = maker.astype(np.int64), taker.astype(np.int64)

        raw_keys, raw_first = _first_months(
            np.minimum(maker64, taker64) * n_users + np.maximum(maker64, taker64),
            months,
        )
        src_all = np.concatenate([maker64, taker64[bidirectional]])
        dst_all = np.concatenate([taker64, maker64[bidirectional]])
        directed_keys, directed_first = _first_months(
            src_all * n_users + dst_all,
            np.concatenate([months, months[bidirectional]]),
        )
        node_keys, node_first = _first_months(
            np.concatenate([maker64, taker64]), np.concatenate([months, months])
        )

        deg_raw = np.zeros(n_users, dtype=np.int64)
        deg_in = np.zeros(n_users, dtype=np.int64)
        deg_out = np.zeros(n_users, dtype=np.int64)
        raw_sum = 0
        present = 0
        series: List[DegreeGrowthPoint] = []
        for idx in range(int(months.min()), int(months.max()) + 1):
            new_raw = raw_keys[raw_first == idx]
            low, high = new_raw // n_users, new_raw % n_users
            np.add.at(deg_raw, low, 1)
            selfless = high != low
            np.add.at(deg_raw, high[selfless], 1)
            raw_sum += len(low) + int(selfless.sum())
            new_directed = directed_keys[directed_first == idx]
            np.add.at(deg_out, new_directed // n_users, 1)
            np.add.at(deg_in, new_directed % n_users, 1)
            present += int((node_first == idx).sum())
            series.append(
                DegreeGrowthPoint(
                    month=month_from_index(idx),
                    average_raw=raw_sum / present if present else 0.0,
                    max_raw=int(deg_raw.max()),
                    max_inbound=int(deg_in.max()),
                    max_outbound=int(deg_out.max()),
                )
            )
        return series

    contracts = dataset.completed() if completed_only else dataset.contracts
    if not contracts:
        return []
    by_month: Dict[Month, List[Contract]] = {}
    for contract in contracts:
        by_month.setdefault(month_of(contract.created_at), []).append(contract)

    months = sorted(by_month)
    graph = ContractGraph([])
    series = []
    first, last = months[0], months[-1]
    current = first
    while current <= last:
        for contract in by_month.get(current, ()):  # grow incrementally
            graph.add_contract(contract)
        series.append(
            DegreeGrowthPoint(
                month=current,
                average_raw=graph.average_degree("raw"),
                max_raw=graph.max_degree("raw"),
                max_inbound=graph.max_degree("inbound"),
                max_outbound=graph.max_degree("outbound"),
            )
        )
        current = current.next()
    return series
