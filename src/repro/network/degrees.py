"""Degree distributions (Figure 7) and degree growth over time (Figure 8).

Both figures are computed twice: over *created* contracts (everything in
the dataset) and over *completed* contracts only.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.dataset import MarketDataset
from ..core.entities import Contract
from ..core.timeutils import Month, month_of
from .graph import DEGREE_KINDS, ContractGraph

__all__ = [
    "DegreeDistributions",
    "DegreeGrowthPoint",
    "degree_distributions",
    "degree_growth",
]


@dataclass
class DegreeDistributions:
    """Figure 7's data: degree histograms for one contract set.

    ``histogram[kind][d]`` is the number of users with degree ``d``;
    ``max_degree[kind]`` the highest degree observed.
    """

    histogram: Dict[str, Dict[int, int]]
    max_degree: Dict[str, int]
    average_degree: Dict[str, float]
    n_users: int
    n_contracts: int

    def truncated(self, kind: str, limit: int = 15) -> Dict[int, int]:
        """Histogram restricted to degrees 0..limit (as plotted)."""
        return {
            degree: count
            for degree, count in sorted(self.histogram[kind].items())
            if degree <= limit
        }


def degree_distributions(contracts: Sequence[Contract]) -> DegreeDistributions:
    """Compute raw/inbound/outbound degree distributions for a contract set."""
    graph = ContractGraph(contracts)
    histogram: Dict[str, Dict[int, int]] = {}
    max_degree: Dict[str, int] = {}
    average_degree: Dict[str, float] = {}
    for kind in DEGREE_KINDS:
        degrees = graph.degree_array(kind)
        histogram[kind] = dict(sorted(Counter(degrees.tolist()).items()))
        max_degree[kind] = int(degrees.max()) if len(degrees) else 0
        average_degree[kind] = float(degrees.mean()) if len(degrees) else 0.0
    return DegreeDistributions(
        histogram=histogram,
        max_degree=max_degree,
        average_degree=average_degree,
        n_users=len(graph),
        n_contracts=graph.n_contracts,
    )


@dataclass
class DegreeGrowthPoint:
    """One month of Figure 8: cumulative-network degree summaries."""

    month: Month
    average_raw: float
    max_raw: int
    max_inbound: int
    max_outbound: int


def degree_growth(
    dataset: MarketDataset, completed_only: bool = False
) -> List[DegreeGrowthPoint]:
    """Cumulative degree growth month by month (Figure 8).

    The network at month *m* contains every qualifying contract created up
    to the end of *m*; the graph is grown incrementally so the whole
    series costs one pass over the contracts.
    """
    contracts = dataset.completed() if completed_only else dataset.contracts
    if not contracts:
        return []
    by_month: Dict[Month, List[Contract]] = {}
    for contract in contracts:
        by_month.setdefault(month_of(contract.created_at), []).append(contract)

    months = sorted(by_month)
    graph = ContractGraph([])
    series: List[DegreeGrowthPoint] = []
    first, last = months[0], months[-1]
    current = first
    while current <= last:
        for contract in by_month.get(current, ()):  # grow incrementally
            graph.add_contract(contract)
        series.append(
            DegreeGrowthPoint(
                month=current,
                average_raw=graph.average_degree("raw"),
                max_raw=graph.max_degree("raw"),
                max_inbound=graph.max_degree("inbound"),
                max_outbound=graph.max_degree("outbound"),
            )
        )
        current = current.next()
    return series
