"""Discrete power-law fitting (Clauset–Shalizi–Newman style).

§4.2 observes that raw and inbound degree distributions "follow a
power-law distribution ... a naturally grown scale-free network".  This
module provides the MLE for the discrete power-law exponent with the
standard continuous approximation

    alpha = 1 + n / sum( ln( x_i / (xmin - 0.5) ) ),

KS-based selection of ``xmin``, and a likelihood-ratio check against an
exponential alternative (heavy tail vs thin tail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law", "loglik_ratio_vs_exponential"]


@dataclass(frozen=True)
class PowerLawFit:
    """A fitted discrete power law ``P(x) ~ x^-alpha`` for ``x >= xmin``."""

    alpha: float
    xmin: int
    ks_statistic: float
    n_tail: int

    @property
    def plausible(self) -> bool:
        """Loose plausibility: enough tail mass and a sane exponent."""
        return self.n_tail >= 25 and 1.5 <= self.alpha <= 4.5


def _alpha_mle(x: np.ndarray, xmin: int) -> float:
    return 1.0 + len(x) / np.log(x / (xmin - 0.5)).sum()


def _ks_distance(x: np.ndarray, alpha: float, xmin: int) -> float:
    """KS distance between the empirical tail CDF and the model CDF."""
    x = np.sort(x)
    n = len(x)
    empirical = np.arange(1, n + 1) / n
    # Continuous-approximation CDF for the discrete power law.
    model = 1.0 - np.power(x / (xmin - 0.5), 1.0 - alpha)
    return float(np.abs(empirical - model).max())


def fit_power_law(
    degrees: Sequence[int],
    xmin: Optional[int] = None,
    xmin_candidates: Optional[Sequence[int]] = None,
) -> PowerLawFit:
    """Fit a power law to positive degrees.

    When ``xmin`` is not given, it is chosen from ``xmin_candidates``
    (default 1..20) by minimising the KS distance, as in Clauset et al.
    Zeros are dropped (they cannot be power-law distributed).
    """
    values = np.asarray([d for d in degrees if d > 0], dtype=float)
    if len(values) < 10:
        raise ValueError("need at least 10 positive observations")

    def fit_at(candidate: int) -> Optional[PowerLawFit]:
        tail = values[values >= candidate]
        if len(tail) < 10:
            return None
        alpha = _alpha_mle(tail, candidate)
        ks = _ks_distance(tail, alpha, candidate)
        return PowerLawFit(alpha=alpha, xmin=candidate, ks_statistic=ks, n_tail=len(tail))

    if xmin is not None:
        result = fit_at(int(xmin))
        if result is None:
            raise ValueError(f"not enough tail mass above xmin={xmin}")
        return result

    candidates = list(xmin_candidates or range(1, 21))
    best: Optional[PowerLawFit] = None
    for candidate in candidates:
        result = fit_at(int(candidate))
        if result is not None and (best is None or result.ks_statistic < best.ks_statistic):
            best = result
    if best is None:
        raise ValueError("no xmin candidate leaves enough tail mass")
    return best


def loglik_ratio_vs_exponential(
    degrees: Sequence[int], fit: PowerLawFit
) -> Tuple[float, float]:
    """Log-likelihood ratio (power law minus exponential) on the tail.

    Returns ``(ratio, normalised_ratio)``; a positive ratio favours the
    power law (heavy tail).  The normalised variant divides by the
    standard deviation of the pointwise differences times sqrt(n), giving
    an approximately standard-normal statistic (Vuong-style).
    """
    tail = np.asarray([d for d in degrees if d >= fit.xmin], dtype=float)
    if len(tail) < 2:
        raise ValueError("tail too small")
    # Power-law pointwise log-density (continuous approximation).
    shift = fit.xmin - 0.5
    ll_pl = np.log(fit.alpha - 1.0) - np.log(shift) - fit.alpha * np.log(tail / shift)
    # Exponential MLE on the tail.
    lam = 1.0 / max(tail.mean() - shift, 1e-9)
    ll_exp = np.log(lam) - lam * (tail - shift)
    diff = ll_pl - ll_exp
    ratio = float(diff.sum())
    sd = float(diff.std(ddof=1))
    normalised = ratio / (sd * np.sqrt(len(tail))) if sd > 0 else 0.0
    return ratio, float(normalised)
