"""Command-line interface.

Usage::

    python -m repro generate --scale 0.05 --out market/         # synthesise + save
    python -m repro experiment table1 --scale 0.05               # one artefact
    python -m repro experiment all --scale 0.1 --out results/    # everything
    python -m repro report --scale 0.1 --parallel 4              # cached full suite
    python -m repro report --fast-gen --gen-workers 4 --scale 1  # columnar engine
    python -m repro report --trace --scale 0.05                  # + timing tree/manifest
    python -m repro report --store partitioned --scale 1         # via cache format v3
    python -m repro stream funnel --era covid-19 --scale 1       # opens 4 months only
    python -m repro stream growth --window 2019-03 2020-03       # windowed query
    python -m repro trace show run_manifest.json                 # render a manifest
    python -m repro runs list --seed 7                           # query the run store
    python -m repro runs show <run-id>                           # one run in detail
    python -m repro runs diff <run-a> <run-b>                    # metric deltas
    python -m repro runs resume <run-id>                         # finish an interrupted sweep
    python -m repro serve --api-key KEY --port 8151              # market-as-a-service API
    python -m repro summary --data market/                       # dataset overview
    python -m repro eras --scale 0.05                            # per-era profiles
    python -m repro lint                                         # invariant checks
    python -m repro docscheck                                    # docs link check

``--data DIR`` loads a previously saved dataset (JSONL) instead of
generating one; analyses that need the rate oracle rebuild the
deterministic one, and value verification is skipped without a ledger.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from . import __version__
from .blockchain.rates import RateOracle
from .core.io import load_dataset, save_dataset
from .report.experiments import EXPERIMENTS, ExperimentContext, run_experiment
from .synth.marketsim import SimulationResult
from .synth.config import SimulationConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Turning Up the Dial' (IMC 2020)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="synthesise a market and save it")
    _market_args(generate)
    generate.add_argument("--out", required=True, help="output dataset directory")

    experiment = commands.add_parser("experiment", help="regenerate paper artefacts")
    experiment.add_argument("ids", nargs="+",
                            help="experiment ids (table1..table10, fig01..fig13, "
                                 "sec45, sec52) or 'all'")
    _market_args(experiment)
    experiment.add_argument("--data", help="load dataset from directory instead")
    experiment.add_argument("--out", help="also write artefacts under this directory")
    experiment.add_argument("--latent-k", type=int, default=12)
    experiment.add_argument("--cache-dir",
                            help="opt into the dataset cache, rooted here")

    report = commands.add_parser(
        "report",
        help="run the full experiment suite with dataset caching (and "
             "optionally in parallel)",
    )
    report.add_argument("ids", nargs="*",
                        help="experiment ids to run (default: all)")
    _market_args(report)
    report.add_argument("--out", help="also write artefacts under this directory")
    report.add_argument("--latent-k", type=int, default=12)
    report.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="fan experiments across N forked worker processes; "
                             "workers inherit the parent's dataset and share "
                             "the same on-disk dataset cache, so none of them "
                             "regenerates the market")
    report.add_argument("--cache-dir",
                        help="dataset cache root (default: $REPRO_CACHE_DIR "
                             "or ~/.cache/repro)")
    report.add_argument("--no-cache", action="store_true",
                        help="always regenerate; don't read or write the cache")
    report.add_argument("--store", choices=("resident", "partitioned"),
                        default="resident",
                        help="dataset source: 'resident' caches monolithic "
                             "column files (format v2); 'partitioned' builds "
                             "the month-partitioned store (format v3) and "
                             "materializes it for the resident experiments")
    report.add_argument("--trace", action="store_true",
                        help="record span timings and counters, print the "
                             "timing tree, and write run_manifest.json next "
                             "to the artefacts (--out, else the current "
                             "directory)")
    report.add_argument("--retries", type=int, default=1, metavar="N",
                        help="re-attempts per experiment before it degrades "
                             "to a recorded failure (default: 1)")
    report.add_argument("--retry-backoff", type=float, default=0.0,
                        metavar="SECONDS",
                        help="pause before the first retry, doubled for each "
                             "further one (default: 0)")
    report.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-experiment time limit; a timed-out "
                             "experiment is marked failed and not retried "
                             "(default: none)")
    report.add_argument("--strict", action="store_true",
                        help="exit non-zero when any experiment failed "
                             "(without this flag failures are reported in "
                             "the output and manifest but the run exits 0)")
    _run_store_args(report)

    stream = commands.add_parser(
        "stream",
        help="windowed/per-era queries over the month-partitioned store "
             "(opens only the months the query touches)",
    )
    stream.add_argument("ids", nargs="+",
                        help="streaming experiment ids (growth, typemix, "
                             "taxonomy, funnel, funnel-eras, keyshare, "
                             "concentration, degrees) or 'all'")
    _market_args(stream)
    stream.add_argument("--window", nargs=2, metavar=("START", "END"),
                        help="creation-month window, inclusive (YYYY-MM "
                             "YYYY-MM)")
    stream.add_argument("--era", metavar="NAME",
                        help="restrict to one era (set-up, stable, covid-19 "
                             "or E1/E2/E3); only that era's partitions open")
    stream.add_argument("--cache-dir",
                        help="dataset cache root (default: $REPRO_CACHE_DIR "
                             "or ~/.cache/repro)")
    stream.add_argument("--refresh", action="store_true",
                        help="rebuild the partitioned store even if cached")
    stream.add_argument("--out", help="also write artefacts under this "
                                      "directory")
    stream.add_argument("--trace", action="store_true",
                        help="print span timings and partition.opened "
                             "counters after the run")
    _run_store_args(stream)

    summary = commands.add_parser("summary", help="print a dataset overview")
    _market_args(summary)
    summary.add_argument("--data", help="load dataset from directory instead")

    eras = commands.add_parser("eras", help="per-era profiles and the stimulus test")
    _market_args(eras)
    eras.add_argument("--data", help="load dataset from directory instead")

    validate = commands.add_parser("validate", help="integrity-check a dataset")
    validate.add_argument("--data", required=True, help="dataset directory (JSONL)")
    validate.add_argument("--scale", type=float, default=0.05, help=argparse.SUPPRESS)
    validate.add_argument("--seed", type=int, default=0, help=argparse.SUPPRESS)

    export = commands.add_parser("export-csv", help="export a dataset as CSV")
    export.add_argument("--data", help="dataset directory (JSONL); generated if omitted")
    export.add_argument("--out", required=True, help="CSV output directory")
    _market_args(export)

    trace = commands.add_parser(
        "trace", help="inspect run manifests written by 'report --trace'"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_show = trace_sub.add_parser(
        "show", help="render a run manifest as a provenance/timing report"
    )
    trace_show.add_argument(
        "manifest",
        help="manifest file, a directory containing run_manifest.json, "
             "or a run id from the run store",
    )
    trace_show.add_argument("--runs-dir",
                            help="run store root used to resolve run ids "
                                 "(default: $REPRO_RUNS_DIR or "
                                 "~/.cache/repro/runs)")

    runs = commands.add_parser(
        "runs",
        help="query the persistent run store: list, show, diff, resume",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    runs_list = runs_sub.add_parser(
        "list", help="list stored runs, filterable by config/seed/era"
    )
    _runs_dir_arg(runs_list)
    runs_list.add_argument("--command", dest="filter_command",
                           choices=("report", "stream"),
                           help="only runs of this command")
    runs_list.add_argument("--seed", type=int, help="only this seed")
    runs_list.add_argument("--scale", type=float, help="only this scale")
    runs_list.add_argument("--config", metavar="PREFIX",
                           help="only runs whose config sha256 starts with "
                                "PREFIX")
    runs_list.add_argument("--era", metavar="NAME",
                           help="only runs restricted to this era")
    runs_list.add_argument("--status",
                           choices=("running", "complete", "failed"),
                           help="only runs in this state")
    runs_list.add_argument("--format", choices=("table", "ids"),
                           default="table",
                           help="'ids' prints one run id per line (for "
                                "scripting)")

    runs_show = runs_sub.add_parser(
        "show", help="render one run: provenance, per-experiment results"
    )
    _runs_dir_arg(runs_show)
    runs_show.add_argument("run_id", help="run id (see 'runs list')")
    runs_show.add_argument("--trace", action="store_true",
                           help="also render the run's manifest (traced "
                                "runs only)")

    runs_diff = runs_sub.add_parser(
        "diff",
        help="compare two runs' metrics experiment by experiment "
             "(exit 1 when they differ)",
    )
    _runs_dir_arg(runs_diff)
    runs_diff.add_argument("a", help="first run id")
    runs_diff.add_argument("b", help="second run id")
    runs_diff.add_argument("--tolerance", type=float, default=0.0,
                           metavar="EPS",
                           help="treat |delta| <= EPS as equal "
                                "(default: 0 = exact)")
    runs_diff.add_argument("--ids", nargs="*", metavar="ID",
                           help="restrict the comparison to these "
                                "experiment ids")

    runs_resume = runs_sub.add_parser(
        "resume",
        help="finish an interrupted sweep: re-run only the experiments "
             "without an ok result, under the run's recorded retry policy",
    )
    _runs_dir_arg(runs_resume)
    runs_resume.add_argument("run_id", help="run id (see 'runs list')")
    runs_resume.add_argument("--cache-dir",
                             help="dataset cache root (default: "
                                  "$REPRO_CACHE_DIR or ~/.cache/repro)")
    runs_resume.add_argument("--parallel", type=int, default=None,
                             metavar="N",
                             help="override the recorded worker count")

    serve = commands.add_parser(
        "serve",
        help="serve the market over HTTP: deterministic cached endpoints "
             "for generation, slices and experiments (see docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8151)
    serve.add_argument("--api-key", action="append", dest="api_keys",
                       metavar="KEY", default=None,
                       help="accepted X-API-Key value (repeatable); "
                            "required unless --no-auth")
    serve.add_argument("--no-auth", action="store_true",
                       help="serve without authentication (development "
                            "only)")
    serve.add_argument("--rate", type=float, default=10.0, metavar="RPS",
                       help="sustained per-key requests per second "
                            "(default: 10)")
    serve.add_argument("--burst", type=int, default=30, metavar="N",
                       help="per-key burst budget (default: 30)")
    serve.add_argument("--max-scale", type=float, default=0.25,
                       help="largest dataset scale a request may ask for "
                            "(default: 0.25)")
    serve.add_argument("--timeout", type=float, default=300.0,
                       metavar="SECONDS",
                       help="per-request compute time limit, enforced in "
                            "the forked worker (default: 300)")
    serve.add_argument("--workers", type=int, default=4, metavar="N",
                       help="executor threads handling blocking compute "
                            "(default: 4)")
    serve.add_argument("--no-fork", action="store_true",
                       help="compute inline in executor threads instead of "
                            "forked workers (time limits become advisory)")
    serve.add_argument("--cache-dir",
                       help="dataset cache root (default: $REPRO_CACHE_DIR "
                            "or ~/.cache/repro)")
    _run_store_args(serve)

    docscheck = commands.add_parser(
        "docscheck",
        help="check docs/ and README.md for dead links and stale module "
             "references",
    )
    docscheck.add_argument("--root", default=".",
                           help="repository root (default: current directory)")
    docscheck.add_argument("--format", choices=("text", "json"), default="text",
                           help="output format")

    lint = commands.add_parser(
        "lint",
        help="run reprolint, the project-specific static-analysis pass",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: src/ and "
                           "tests/ under --root)")
    lint.add_argument("--root", default=".",
                      help="repository root (default: current directory)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", help="output format")
    lint.add_argument("--baseline",
                      help="baseline file of grandfathered findings "
                           "(default: <root>/lint-baseline.txt when present)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="rewrite the baseline from the current findings")
    lint.add_argument("--explain", metavar="RULE",
                      help="print the rationale for one rule id (e.g. R003)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list the registered rules")
    lint.add_argument("--changed", action="store_true",
                      help="pre-commit mode: lint only files differing from "
                           "git HEAD with the per-file rules")
    lint.add_argument("--jobs", type=int, default=0,
                      help="worker processes for rule execution "
                           "(0 = auto, 1 = serial)")
    lint.add_argument("--no-program", action="store_true",
                      help="skip the whole-program rules (R010+); used by "
                           "the CI interpreter matrix")
    lint.add_argument("--no-index-cache", action="store_true",
                      help="parse from scratch instead of using the "
                           ".reprolint-cache AST index")

    return parser


def _runs_dir_arg(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--runs-dir",
                     help="run store root (default: $REPRO_RUNS_DIR or "
                          "~/.cache/repro/runs)")


def _run_store_args(sub: argparse.ArgumentParser) -> None:
    _runs_dir_arg(sub)
    sub.add_argument("--no-run-store", action="store_true",
                     help="don't record this invocation in the run store")


def _market_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--scale", type=float, default=0.05,
                     help="market scale when generating (1.0 = paper volume)")
    sub.add_argument("--seed", type=int, default=20201027)
    sub.add_argument("--no-posts", action="store_true",
                     help="skip post generation (faster)")
    sub.add_argument("--engine", choices=("auto", "object", "fastgen"),
                     default="auto",
                     help="generation engine; 'auto' (default) picks the "
                          "object engine below the measured ~0.05-scale "
                          "crossover and the columnar engine above it")
    sub.add_argument("--fast-gen", action="store_true",
                     help="shorthand for --engine fastgen "
                          "(repro.synth.fastgen): vectorized, cohort-"
                          "sharded, writes straight into the column store")
    sub.add_argument("--gen-workers", type=int, default=1, metavar="N",
                     help="fork N processes for cohort-shard generation "
                          "(--fast-gen only; the dataset is identical at "
                          "any worker count)")


def _engine_overrides(args) -> dict:
    """Config overrides implied by the generation flags."""
    overrides = {"generate_posts": not args.no_posts}
    if getattr(args, "fast_gen", False):
        overrides["engine"] = "fastgen"
    else:
        overrides["engine"] = getattr(args, "engine", "auto")
    return overrides


def _load_or_generate(args) -> SimulationResult:
    if getattr(args, "data", None):
        dataset = load_dataset(args.data)
        from .blockchain.chain import Ledger
        from .synth.marketsim import SimulationTruth

        return SimulationResult(
            dataset=dataset,
            ledger=Ledger(),
            rates=RateOracle(),
            truth=SimulationTruth(),
            config=SimulationConfig(scale=args.scale, seed=args.seed),
        )
    if getattr(args, "cache_dir", None) and not getattr(args, "no_cache", False):
        from .synth.cache import cached_generate

        result, hit = cached_generate(
            scale=args.scale,
            seed=args.seed,
            cache_dir=args.cache_dir,
            gen_workers=getattr(args, "gen_workers", 1),
            **_engine_overrides(args),
        )
        print(
            f"dataset: {'cache hit' if hit else 'generated and cached'} "
            f"(scale={args.scale}, seed={args.seed})",
            file=sys.stderr,
        )
        return result
    return _generate_direct(args)


def _generate_direct(args) -> SimulationResult:
    from .synth.engine import run_engine

    config = SimulationConfig(
        scale=args.scale, seed=args.seed, **_engine_overrides(args)
    )
    return run_engine(config, workers=getattr(args, "gen_workers", 1))


def _cmd_generate(args) -> int:
    started = time.time()
    result = _generate_direct(args)
    save_dataset(result.dataset, args.out)
    summary = result.dataset.summary()
    print(f"generated {summary['contracts']:,} contracts "
          f"({summary['users']:,} users) in {time.time() - started:.1f}s")
    print(f"saved to {args.out}/")
    return 0


def _cmd_experiment(args) -> int:
    wanted = list(EXPERIMENTS) if "all" in args.ids else args.ids
    unknown = [i for i in wanted if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    result = _load_or_generate(args)
    ctx = ExperimentContext(result, latent_k=args.latent_k)
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    for experiment_id in wanted:
        report = run_experiment(experiment_id, ctx)
        print(report.text())
        print()
        if args.out:
            path = os.path.join(args.out, f"{experiment_id}.txt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(report.text() + "\n")
    return 0


def _cmd_report(args) -> int:
    wanted = args.ids if args.ids and "all" not in args.ids else list(EXPERIMENTS)
    unknown = [i for i in wanted if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    tracer = None
    if args.trace:
        from .obs import enable_tracing

        tracer = enable_tracing()
    run_started_unix = time.time()
    started = time.time()
    if args.no_cache:
        result = _generate_direct(args)
        source = "generated (cache disabled)"
    elif getattr(args, "store", "resident") == "partitioned":
        from .synth.cache import (
            cached_partitioned_store,
            result_from_partitioned_store,
        )

        store, hit = cached_partitioned_store(
            scale=args.scale,
            seed=args.seed,
            cache_dir=args.cache_dir,
            **_engine_overrides(args),
        )
        result = result_from_partitioned_store(
            store,
            SimulationConfig(
                scale=args.scale, seed=args.seed, **_engine_overrides(args)
            ),
        )
        source = (
            "partitioned store hit" if hit else "streamed to partitioned store"
        )
    else:
        from .synth.cache import cached_generate

        result, hit = cached_generate(
            scale=args.scale,
            seed=args.seed,
            cache_dir=args.cache_dir,
            gen_workers=args.gen_workers,
            **_engine_overrides(args),
        )
        source = "cache hit" if hit else "generated and cached"
    print(
        f"dataset: {source} in {time.time() - started:.1f}s "
        f"(scale={args.scale}, seed={args.seed}, "
        f"{len(result.dataset.contracts):,} contracts)",
        file=sys.stderr,
    )

    from .robust import RetryPolicy

    policy = RetryPolicy(
        max_retries=max(0, args.retries),
        backoff_seconds=max(0.0, args.retry_backoff),
        timeout_seconds=args.timeout,
    )
    ctx = ExperimentContext(result, latent_k=args.latent_k)

    import platform

    from .runs import RunContext, RunStore
    from .runs.runner import detect_git_rev, execute_run
    from .synth.cache import config_fingerprint

    context = RunContext(
        command="report",
        config_sha256=config_fingerprint(result.config),
        seed=args.seed,
        scale=args.scale,
        engine=result.config.resolved_engine,
        store="resident" if args.no_cache else getattr(args, "store", "resident"),
        experiments=tuple(wanted),
        latent_k=args.latent_k,
        package_version=__version__,
        python_version=platform.python_version(),
        git_rev=detect_git_rev(),
        parallel=max(1, args.parallel),
        max_retries=max(0, args.retries),
        retry_backoff=max(0.0, args.retry_backoff),
        timeout_seconds=args.timeout,
        config={"scale": args.scale, "seed": args.seed,
                **_engine_overrides(args)},
    )
    runs_store = None if args.no_run_store else RunStore(args.runs_dir)
    record, runs = execute_run(
        runs_store, context, ctx, policy=policy,
        created_unix=run_started_unix,
    )
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    for run in runs:
        print(run.report.text())
        print()
        if args.out:
            path = os.path.join(args.out, f"{run.experiment_id}.txt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(run.report.text() + "\n")
    print("experiment wall times:", file=sys.stderr)
    for run in runs:
        marker = "" if run.ok else "  FAILED"
        print(f"  {run.experiment_id:<10s} {run.seconds:7.2f}s{marker}",
              file=sys.stderr)
    print(
        f"  {'total':<10s} {sum(r.seconds for r in runs):7.2f}s "
        f"({len(runs)} experiments, parallel={max(1, args.parallel)})",
        file=sys.stderr,
    )
    failed = [run for run in runs if not run.ok]
    if failed:
        print(
            f"{len(failed)} of {len(runs)} experiments failed:",
            file=sys.stderr,
        )
        for run in failed:
            print(
                f"  {run.experiment_id}: {run.error['type']}: "
                f"{run.error['message']} "
                f"(after {run.error['attempts']} attempts)",
                file=sys.stderr,
            )

    if tracer is not None:
        from .obs import (
            RunManifest,
            peak_rss_bytes,
            render_counters,
            render_timing_tree,
            write_manifest,
        )

        manifest = RunManifest(
            command="report",
            config_sha256=config_fingerprint(result.config),
            run_id=record.run_id if record is not None else None,
            seed=args.seed,
            scale=args.scale,
            package_version=__version__,
            python_version=platform.python_version(),
            created_unix=run_started_unix,
            params={
                "parallel": max(1, args.parallel),
                "latent_k": args.latent_k,
                "posts": not args.no_posts,
                "cache": not args.no_cache,
                "engine": result.config.resolved_engine,
                "gen_workers": max(1, args.gen_workers),
                "experiments": len(runs),
            },
            dataset=result.dataset.summary(),
            experiments=[
                {"id": run.experiment_id, "seconds": run.seconds,
                 "attempts": run.attempts,
                 **({"error": run.error} if run.error else {})}
                for run in runs
            ],
            total_seconds=time.time() - run_started_unix,
            peak_rss_bytes=peak_rss_bytes(),
            counters=dict(tracer.counters),
            gauges=dict(tracer.gauges),
            spans=[record.to_dict() for record in tracer.roots],
        )
        manifest_path = write_manifest(manifest, args.out or ".")
        if record is not None:
            # The tracer manifest also lands inside the run directory, so
            # `runs show --trace` finds it without a separate --out.
            write_manifest(manifest, record.manifest_path())
        print("", file=sys.stderr)
        print("timing tree:", file=sys.stderr)
        for line in render_timing_tree(tracer.roots):
            print("  " + line, file=sys.stderr)
        print("counters:", file=sys.stderr)
        for line in render_counters(tracer.counters, tracer.gauges):
            print("  " + line, file=sys.stderr)
        print(f"manifest: {manifest_path}", file=sys.stderr)
    if record is not None:
        print(f"run: {record.run_id} [{record.status}] -> {record.path}",
              file=sys.stderr)
        print(f"     inspect with: repro runs show {record.run_id}",
              file=sys.stderr)
    if failed and args.strict:
        return 1
    return 0


def _cmd_stream(args) -> int:
    from .report.stream_experiments import STREAM_EXPERIMENTS

    wanted = (
        list(STREAM_EXPERIMENTS) if "all" in args.ids else args.ids
    )
    unknown = [i for i in wanted if i not in STREAM_EXPERIMENTS]
    if unknown:
        print(f"unknown stream experiment ids: {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(STREAM_EXPERIMENTS)}", file=sys.stderr)
        return 2

    tracer = None
    if args.trace:
        from .obs import enable_tracing

        tracer = enable_tracing()
    from .synth.cache import cached_partitioned_store

    run_started_unix = time.time()
    started = time.time()
    store, hit = cached_partitioned_store(
        scale=args.scale,
        seed=args.seed,
        cache_dir=args.cache_dir,
        refresh=args.refresh,
        **_engine_overrides(args),
    )
    print(
        f"store: {'hit' if hit else 'built'} in {time.time() - started:.1f}s "
        f"({len(store.months)} month partitions, scale={args.scale}, "
        f"seed={args.seed})",
        file=sys.stderr,
    )
    start, end = args.window if args.window else (None, None)

    import platform

    from .runs import RunContext, RunStore
    from .runs.runner import detect_git_rev, execute_stream_run
    from .synth.cache import config_fingerprint

    config = SimulationConfig(
        scale=args.scale, seed=args.seed, **_engine_overrides(args)
    )
    params = {}
    if args.era:
        params["era"] = args.era
    if start or end:
        params["start"], params["end"] = start, end
    context = RunContext(
        command="stream",
        config_sha256=config_fingerprint(config),
        seed=args.seed,
        scale=args.scale,
        engine=config.resolved_engine,
        store="partitioned",
        experiments=tuple(f"stream-{i}" for i in wanted),
        package_version=__version__,
        python_version=platform.python_version(),
        git_rev=detect_git_rev(),
        params=params,
        config={"scale": args.scale, "seed": args.seed,
                **_engine_overrides(args)},
    )
    runs_store = None if args.no_run_store else RunStore(args.runs_dir)
    record, results = execute_stream_run(
        runs_store, context, store, created_unix=run_started_unix
    )

    if args.out:
        os.makedirs(args.out, exist_ok=True)
    for result in results:
        print(result.text())
        print()
        if args.out:
            path = os.path.join(args.out, f"{result.experiment_id}.txt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(result.text() + "\n")
    if record is not None:
        print(f"run: {record.run_id} [{record.status}] -> {record.path}",
              file=sys.stderr)

    if tracer is not None:
        from .obs import render_counters, render_timing_tree

        print("timing tree:", file=sys.stderr)
        for line in render_timing_tree(tracer.roots):
            print("  " + line, file=sys.stderr)
        print("counters:", file=sys.stderr)
        for line in render_counters(tracer.counters, tracer.gauges):
            print("  " + line, file=sys.stderr)
    return 0


def _cmd_trace(args) -> int:
    from .obs import render_manifest
    from .runs import load_manifest

    try:
        manifest = load_manifest(args.manifest, getattr(args, "runs_dir", None))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for line in render_manifest(manifest):
        print(line)
    return 0


def _cmd_runs(args) -> int:
    handlers = {
        "list": _cmd_runs_list,
        "show": _cmd_runs_show,
        "diff": _cmd_runs_diff,
        "resume": _cmd_runs_resume,
    }
    return handlers[args.runs_command](args)


def _cmd_runs_list(args) -> int:
    from .runs import RunStore, render_runs_table

    store = RunStore(args.runs_dir)
    records = store.list_runs(
        command=args.filter_command,
        seed=args.seed,
        scale=args.scale,
        config_prefix=args.config,
        era=args.era,
        status=args.status,
    )
    if args.format == "ids":
        for record in records:
            print(record.run_id)
        return 0
    for line in render_runs_table(records):
        print(line)
    return 0


def _cmd_runs_show(args) -> int:
    from .runs import (
        CorruptRunError,
        RunStore,
        UnknownRunError,
        load_manifest,
        render_run,
    )
    from .robust import quarantine_dir

    store = RunStore(args.runs_dir)
    try:
        record = store.load(args.run_id, verify=True)
    except UnknownRunError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CorruptRunError as exc:
        quarantined = quarantine_dir(
            store.path_for(args.run_id), counter="runs.corrupt"
        )
        print(f"error: corrupt run: {exc}", file=sys.stderr)
        if quarantined:
            print(f"quarantined to {quarantined}", file=sys.stderr)
        return 1
    for line in render_run(record):
        print(line)
    if args.trace:
        from .obs import render_manifest

        try:
            manifest = load_manifest(args.run_id, args.runs_dir)
        except (OSError, ValueError) as exc:
            print(f"\nno manifest: {exc}", file=sys.stderr)
            return 0
        print()
        for line in render_manifest(manifest):
            print(line)
    return 0


def _cmd_runs_diff(args) -> int:
    from .runs import RunsError, RunStore, diff_runs, render_run_diff

    store = RunStore(args.runs_dir)
    try:
        a = store.load(args.a)
        b = store.load(args.b)
    except RunsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = diff_runs(a, b, tolerance=args.tolerance,
                     experiments=args.ids or None)
    for line in render_run_diff(diff):
        print(line)
    return 0 if diff.identical else 1


def _cmd_runs_resume(args) -> int:
    from .runs import RunsError, RunStore
    from .runs.runner import resume_run

    store = RunStore(args.runs_dir)
    try:
        record, rerun = resume_run(
            store,
            args.run_id,
            cache_dir=args.cache_dir,
            parallel=args.parallel,
        )
    except RunsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if rerun:
        print(f"re-executed {len(rerun)} experiment(s): {', '.join(rerun)}")
    else:
        print("nothing to do: every experiment already has an ok result")
    print(f"run: {record.run_id} [{record.status}] -> {record.path}")
    return 0 if record.status == "complete" else 1


def _cmd_docscheck(args) -> int:
    from .devtools.docscheck import run_docscheck_command

    return run_docscheck_command(args)


def _cmd_summary(args) -> int:
    result = _load_or_generate(args)
    for key, value in result.dataset.summary().items():
        print(f"{key:<22s} {value:,}")
    return 0


def _cmd_eras(args) -> int:
    from .analysis.eras_summary import era_profiles, stimulus_test

    result = _load_or_generate(args)
    print(f"{'era':<10s} {'contracts':>10s} {'/month':>8s} {'completed':>10s} "
          f"{'public':>7s} {'members':>8s} {'new':>7s}")
    for profile in era_profiles(result.dataset):
        print(f"{profile.short:<10s} {profile.contracts:>10,} "
              f"{profile.contracts_per_month:>8,.0f} "
              f"{profile.completion_rate:>9.1%} {profile.public_share:>7.1%} "
              f"{profile.members:>8,} {profile.new_members:>7,}")
    outcome = stimulus_test(result.dataset)
    print(f"\nCOVID-19 vs late STABLE: volume x{outcome.volume_ratio:.2f}, "
          f"type-mix drift {outcome.type_drift:.3f}, "
          f"product-mix drift {outcome.category_drift:.3f}")
    verdict = "stimulus" if outcome.is_stimulus else (
        "transformation" if outcome.is_transformation else "neither"
    )
    print(f"verdict: {verdict} (paper: stimulus, not transformation)")
    return 0


def _cmd_validate(args) -> int:
    from .core.validate import validate_dataset

    dataset = load_dataset(args.data)
    issues = validate_dataset(dataset)
    if not issues:
        print(f"ok: {len(dataset.contracts):,} contracts, no issues")
        return 0
    for issue in issues:
        print(issue)
    errors = sum(1 for i in issues if i.severity == "error")
    return 1 if errors else 0


def _cmd_export_csv(args) -> int:
    from .core.csv_export import export_csv

    result = _load_or_generate(args)
    paths = export_csv(result.dataset, args.out)
    for path in paths:
        print(f"wrote {path}")
    return 0


def _cmd_lint(args) -> int:
    from .devtools.lint.cli import run_lint_command

    return run_lint_command(args)


def _cmd_serve(args) -> int:
    from .serve import ServeSettings, create_app
    from .serve.server import serve_forever

    keys = tuple(args.api_keys or ())
    if args.no_auth:
        keys = ()
    elif not keys:
        print("refusing to serve unauthenticated: pass --api-key KEY "
              "(repeatable) or explicit --no-auth", file=sys.stderr)
        return 2
    settings = ServeSettings(
        api_keys=keys,
        rate_capacity=max(1, args.burst),
        rate_refill_per_second=max(0.0, args.rate),
        cache_dir=args.cache_dir,
        runs_dir=args.runs_dir,
        use_run_store=not args.no_run_store,
        max_scale=args.max_scale,
        timeout_seconds=args.timeout,
        use_fork=not args.no_fork,
        executor_workers=max(1, args.workers),
        clock=time.time,
    )
    app = create_app(settings)
    auth = f"{len(keys)} key(s)" if keys else "DISABLED"
    print(f"repro serve on http://{args.host}:{args.port} "
          f"(auth: {auth}, rate: {args.rate:g}/s burst {args.burst}, "
          f"max scale {args.max_scale:g})", file=sys.stderr)
    print("endpoints: /healthz /v1/meta /v1/dataset/summary "
          "/v1/experiments/<id> /v1/reports /v1/slices/<id> /v1/runs",
          file=sys.stderr)
    serve_forever(app, args.host, args.port)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if os.environ.get("REPRO_FAULTS"):
        # Deterministic fault injection (tests / make test-faults only):
        # arm the directives before any command touches cache or runner.
        from .devtools.faults import arm_from_env

        arm_from_env()
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "experiment": _cmd_experiment,
        "report": _cmd_report,
        "stream": _cmd_stream,
        "summary": _cmd_summary,
        "eras": _cmd_eras,
        "validate": _cmd_validate,
        "export-csv": _cmd_export_csv,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
        "trace": _cmd_trace,
        "runs": _cmd_runs,
        "docscheck": _cmd_docscheck,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
