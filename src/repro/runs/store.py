"""The queryable persistent run store behind ``repro runs``.

One invocation = one run directory, atomically published under the runs
root (``$REPRO_RUNS_DIR`` or ``~/.cache/repro/runs``):

.. code-block:: text

    <runs-root>/<run-id>/
        run.json            # status + RunContext + checksummed index
        results/<id>.json   # one ExperimentResult payload per experiment
        artifacts/<id>.txt  # the rendered table/figure text
        run_manifest.json   # tracer manifest, when the run was traced

The directory name is the deterministic :meth:`~repro.runs.contract.
RunContext.run_name` (identity-derived, never a timestamp); repeat
invocations of the same context get ordinal ``-2``/``-3`` suffixes so
byte-identical reruns sit side by side for ``runs diff``.  Publication
reuses the :mod:`repro.robust` protocol end to end: the directory is
staged as a ``tmp-<pid>`` sibling and renamed into place, every result
file is written via write-to-temp + fsync + ``os.replace``, and
``finish`` seals the run with a sha256 index over its files.  A
``run.json`` that fails to parse — torn by a crash or external writer —
is quarantined to ``<run>.corrupt-<n>`` and counted
(``runs.corrupt``), never deleted and never fatal to a listing.

``run.json`` keeps ``status="running"`` until every planned experiment
has a recorded result; an interrupted sweep therefore remains visible,
and ``repro runs resume`` re-executes exactly the experiments without an
``ok`` result (see :mod:`repro.runs.runner`).

This module never reads the wall clock (reprolint R002): run identity is
context-derived and ``created_unix`` stamps are passed in by the CLI.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..obs.manifest import MANIFEST_NAME, RunManifest, read_manifest
from ..obs.tracer import get_tracer
from ..robust.atomic import fsync_path, publish_dir, sha256_file, staging_dir
from ..robust.crashpoints import crash_point
from ..robust.locks import FileLock, LockTimeout
from ..robust.quarantine import quarantine_dir
from .contract import (
    RUN_SCHEMA_VERSION,
    ExperimentResult,
    RunContext,
    extract_metrics,
)

__all__ = [
    "RUN_FILE",
    "RunsError",
    "CorruptRunError",
    "UnknownRunError",
    "RunRecord",
    "RunHandle",
    "RunStore",
    "default_runs_dir",
    "resolve_manifest_path",
    "load_manifest",
]

#: The per-run index file sealing status, context and checksums.
RUN_FILE = "run.json"

_RESULTS_DIR = "results"
_ARTIFACTS_DIR = "artifacts"


class RunsError(RuntimeError):
    """Base class for run-store failures."""


class CorruptRunError(RunsError):
    """A run directory whose index or results cannot be trusted."""


class UnknownRunError(RunsError):
    """A run id that does not exist under the runs root."""


def default_runs_dir() -> str:
    """``$REPRO_RUNS_DIR`` if set, else ``~/.cache/repro/runs``."""
    env = os.environ.get("REPRO_RUNS_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "runs")


def _atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via temp-file + fsync + ``os.replace``."""
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_path(os.path.dirname(path))


def _read_json(path: str) -> Dict[str, Any]:
    """Parse a JSON object file; raise :class:`CorruptRunError` otherwise."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptRunError(f"unreadable run file {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise CorruptRunError(f"expected a JSON object in {path}")
    return payload


@dataclass
class RunRecord:
    """One run as read back from disk: index, context and typed results."""

    run_id: str
    path: str
    status: str
    context: RunContext
    planned: List[str]
    created_unix: Optional[float] = None
    total_seconds: float = 0.0
    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    index: Dict[str, str] = field(default_factory=dict)
    #: Count of result files on disk (cheap listdir; set even when the
    #: results themselves are not loaded, so listings can show progress).
    n_recorded: int = 0

    @property
    def completed(self) -> List[str]:
        """Planned experiments with an ``ok`` result on disk."""
        return [
            eid for eid in self.planned
            if eid in self.results and self.results[eid].ok
        ]

    @property
    def pending(self) -> List[str]:
        """Planned experiments still missing an ``ok`` result."""
        return [
            eid for eid in self.planned
            if eid not in self.results or not self.results[eid].ok
        ]

    @property
    def ok(self) -> bool:
        return self.status == "complete"

    def manifest_path(self) -> str:
        return os.path.join(self.path, MANIFEST_NAME)


class RunHandle:
    """Write access to one (open) run directory.

    Obtained from :meth:`RunStore.begin` (fresh run) or
    :meth:`RunStore.reopen` (resume).  :meth:`record` persists one
    result atomically the moment it is available — a mid-sweep kill
    loses at most the in-flight experiment — and :meth:`finish` seals
    the run with its checksummed index.
    """

    def __init__(
        self,
        run_id: str,
        path: str,
        context: RunContext,
        planned: List[str],
        created_unix: Optional[float] = None,
    ) -> None:
        self.run_id = run_id
        self.path = path
        self.context = context
        self.planned = list(planned)
        self.created_unix = created_unix

    # ------------------------------------------------------------- paths

    @property
    def results_dir(self) -> str:
        return os.path.join(self.path, _RESULTS_DIR)

    @property
    def artifacts_dir(self) -> str:
        return os.path.join(self.path, _ARTIFACTS_DIR)

    def manifest_path(self) -> str:
        return os.path.join(self.path, MANIFEST_NAME)

    # ------------------------------------------------------------ writes

    def record(self, result: ExperimentResult) -> str:
        """Atomically persist one result; returns the result-file path.

        The artifact text lands in ``artifacts/<id>.txt`` and the typed
        payload in ``results/<id>.json``; both writes go through
        temp-file + ``os.replace`` so a kill can tear neither.  The
        ``runs.record`` crash point sits at the top so the fault
        harness can prove resumability (see ``tests/test_runs.py``).
        """
        crash_point("runs.record")
        if result.ok and not result.metrics:
            result.metrics = extract_metrics(result.lines)
        artifact_rel = f"{_ARTIFACTS_DIR}/{result.experiment_id}.txt"
        _atomic_write_text(
            os.path.join(self.path, artifact_rel), result.text() + "\n"
        )
        result.artifacts = [artifact_rel]
        result_path = os.path.join(
            self.results_dir, f"{result.experiment_id}.json"
        )
        _atomic_write_text(
            result_path,
            json.dumps(result.to_payload(), indent=2, sort_keys=True) + "\n",
        )
        get_tracer().count("runs.recorded")
        return result_path

    def finish(self) -> "RunRecord":
        """Seal the run: compute the checksum index and final status.

        Status becomes ``complete`` when every planned experiment has an
        ``ok`` result, ``failed`` when all ran but some degraded, and
        stays ``running`` when results are still missing (a crash before
        the sweep finished).
        """
        results = _load_results(self.path)
        index: Dict[str, str] = {}
        for sub in (_RESULTS_DIR, _ARTIFACTS_DIR):
            subdir = os.path.join(self.path, sub)
            if not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                rel = f"{sub}/{name}"
                index[rel] = sha256_file(os.path.join(self.path, rel))
        missing = [eid for eid in self.planned if eid not in results]
        if missing:
            status = "running"
        elif all(results[eid].ok for eid in self.planned):
            status = "complete"
        else:
            status = "failed"
        total_seconds = sum(r.seconds for r in results.values())
        payload = _run_payload(
            run_id=self.run_id,
            status=status,
            context=self.context,
            planned=self.planned,
            created_unix=self.created_unix,
            total_seconds=total_seconds,
            index=index,
        )
        _atomic_write_text(
            os.path.join(self.path, RUN_FILE),
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
        get_tracer().count(f"runs.finished.{status}")
        return RunRecord(
            run_id=self.run_id,
            path=self.path,
            status=status,
            context=self.context,
            planned=list(self.planned),
            created_unix=self.created_unix,
            total_seconds=total_seconds,
            results=results,
            index=index,
        )


def _run_payload(
    *,
    run_id: str,
    status: str,
    context: RunContext,
    planned: List[str],
    created_unix: Optional[float],
    total_seconds: float = 0.0,
    index: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    return {
        "schema": RUN_SCHEMA_VERSION,
        "run_id": run_id,
        "status": status,
        "created_unix": created_unix,
        "context": context.to_payload(),
        "experiments": list(planned),
        "total_seconds": total_seconds,
        "index": dict(index or {}),
    }


def _quarantine_result_file(path: str) -> None:
    """Move an unparsable result file aside (``<file>.corrupt-<n>``)."""
    n = 1
    while os.path.exists(f"{path}.corrupt-{n}"):
        n += 1
    try:
        os.replace(path, f"{path}.corrupt-{n}")
    except OSError:  # robust: racing cleaner already moved it; skip
        pass
    get_tracer().count("runs.result_corrupt")


def _load_results(run_path: str) -> Dict[str, ExperimentResult]:
    """Read every parsable ``results/*.json``; quarantine torn ones."""
    results: Dict[str, ExperimentResult] = {}
    results_dir = os.path.join(run_path, _RESULTS_DIR)
    if not os.path.isdir(results_dir):
        return results
    for name in sorted(os.listdir(results_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(results_dir, name)
        try:
            result = ExperimentResult.from_payload(_read_json(path))
        except (CorruptRunError, ValueError, TypeError, KeyError):  # robust: a torn or stale result file must not sink the run — resume treats it as missing and re-executes the experiment
            _quarantine_result_file(path)
            continue
        results[result.experiment_id] = result
    return results


class RunStore:
    """Reader/writer over the runs root directory.

    All methods tolerate a missing root (empty store).  Corrupt run
    indexes encountered while listing are quarantined via
    :func:`repro.robust.quarantine.quarantine_dir` and skipped — a
    damaged run can never crash ``runs list``.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_runs_dir()

    # ------------------------------------------------------------ writes

    def begin(
        self,
        context: RunContext,
        created_unix: Optional[float] = None,
    ) -> RunHandle:
        """Allocate and atomically publish a fresh run directory.

        The name is ``context.run_name()`` plus the first free ordinal
        suffix; allocation is serialized by an advisory lock so two
        concurrent invocations of the same context get distinct slots
        (on :class:`~repro.robust.locks.LockTimeout` we proceed
        unlocked — worst case a retry on the rename, never corruption).
        """
        os.makedirs(self.root, exist_ok=True)
        lock = FileLock(os.path.join(self.root, ".runs.lock"), timeout=30.0)
        try:
            lock.acquire()
        except LockTimeout:
            pass
        try:
            base = context.run_name()
            run_id, final = self._allocate(base)
            tmp = staging_dir(final)
            os.makedirs(os.path.join(tmp, _RESULTS_DIR))
            os.makedirs(os.path.join(tmp, _ARTIFACTS_DIR))
            payload = _run_payload(
                run_id=run_id,
                status="running",
                context=context,
                planned=list(context.experiments),
                created_unix=created_unix,
            )
            _atomic_write_text(
                os.path.join(tmp, RUN_FILE),
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
            )
            publish_dir(tmp, final)
        finally:
            lock.release()
        get_tracer().count("runs.started")
        return RunHandle(
            run_id, final, context, list(context.experiments), created_unix
        )

    def reopen(self, run_id: str) -> RunHandle:
        """A write handle onto an existing run (used by ``runs resume``)."""
        record = self.load(run_id, with_results=False)
        return RunHandle(
            record.run_id,
            record.path,
            record.context,
            list(record.planned),
            record.created_unix,
        )

    def _allocate(self, base: str) -> "tuple[str, str]":
        n = 1
        candidate = base
        while os.path.exists(os.path.join(self.root, candidate)):
            n += 1
            candidate = f"{base}-{n}"
        return candidate, os.path.join(self.root, candidate)

    # ------------------------------------------------------------- reads

    def path_for(self, run_id: str) -> str:
        return os.path.join(self.root, run_id)

    def run_ids(self) -> List[str]:
        """Ids of every directory under the root holding a ``run.json``."""
        if not os.path.isdir(self.root):
            return []
        out = []
        for name in sorted(os.listdir(self.root)):
            if ".corrupt-" in name or name.endswith(".lock"):
                continue
            if os.path.isfile(os.path.join(self.root, name, RUN_FILE)):
                out.append(name)
        return out

    def load(
        self,
        run_id: str,
        with_results: bool = True,
        verify: bool = False,
    ) -> RunRecord:
        """Read one run back as a :class:`RunRecord`.

        ``verify=True`` re-hashes every indexed file against the sealed
        sha256 index and raises :class:`CorruptRunError` on mismatch.
        Raises :class:`UnknownRunError` for an absent id and
        :class:`CorruptRunError` for an unparsable ``run.json``.
        """
        path = self.path_for(run_id)
        run_file = os.path.join(path, RUN_FILE)
        if not os.path.isdir(path) or not os.path.isfile(run_file):
            raise UnknownRunError(
                f"no run {run_id!r} under {self.root} "
                f"(try `repro runs list`)"
            )
        payload = _read_json(run_file)
        schema = payload.get("schema")
        if not isinstance(schema, int) or schema > RUN_SCHEMA_VERSION:
            raise CorruptRunError(
                f"unsupported run schema {schema!r} in {run_file} "
                f"(this build reads <= {RUN_SCHEMA_VERSION})"
            )
        try:
            context = RunContext.from_payload(payload.get("context") or {})
        except (ValueError, TypeError) as exc:
            raise CorruptRunError(f"bad run context in {run_file}: {exc}") from exc
        planned = payload.get("experiments")
        if not isinstance(planned, list):
            raise CorruptRunError(f"bad experiment list in {run_file}")
        index = payload.get("index") or {}
        if verify:
            self._verify_index(path, index)
        record = RunRecord(
            run_id=run_id,
            path=path,
            status=str(payload.get("status", "running")),
            context=context,
            planned=[str(e) for e in planned],
            created_unix=payload.get("created_unix"),
            total_seconds=float(payload.get("total_seconds", 0.0)),
            index={str(k): str(v) for k, v in index.items()},
        )
        results_dir = os.path.join(path, _RESULTS_DIR)
        if os.path.isdir(results_dir):
            record.n_recorded = sum(
                1 for name in os.listdir(results_dir)
                if name.endswith(".json")
            )
        if with_results:
            record.results = _load_results(path)
            record.n_recorded = len(record.results)
        return record

    @staticmethod
    def _verify_index(path: str, index: Dict[str, str]) -> None:
        for rel, want in index.items():
            target = os.path.join(path, rel)
            if not os.path.isfile(target):
                raise CorruptRunError(f"indexed file missing: {target}")
            got = sha256_file(target)
            if got != want:
                raise CorruptRunError(
                    f"checksum mismatch for {target}: "
                    f"index says {want[:12]}…, file is {got[:12]}…"
                )

    def list_runs(
        self,
        command: Optional[str] = None,
        seed: Optional[int] = None,
        scale: Optional[float] = None,
        config_prefix: Optional[str] = None,
        era: Optional[str] = None,
        status: Optional[str] = None,
    ) -> List[RunRecord]:
        """Filterable run listing (indexes only; results not loaded).

        A run whose ``run.json`` is corrupt is quarantined to
        ``<run>.corrupt-<n>`` (counted as ``runs.corrupt``) and skipped.
        """
        records: List[RunRecord] = []
        for run_id in self.run_ids():
            try:
                record = self.load(run_id, with_results=False)
            except CorruptRunError:  # robust: a torn run.json is quarantined, never fatal — the listing must survive any on-disk damage
                quarantine_dir(self.path_for(run_id), counter="runs.corrupt")
                continue
            ctx = record.context
            if command is not None and ctx.command != command:
                continue
            if seed is not None and ctx.seed != seed:
                continue
            if scale is not None and abs(ctx.scale - scale) > 1e-12:
                continue
            if config_prefix and not ctx.config_sha256.startswith(config_prefix):
                continue
            if era is not None and dict(ctx.params).get("era") != era:
                continue
            if status is not None and record.status != status:
                continue
            records.append(record)
        records.sort(key=lambda r: (r.created_unix or 0.0, r.run_id))
        return records


# ---------------------------------------------------------------------- #
# Shared manifest resolution (used by both `trace show` and `runs show`)


def resolve_manifest_path(target: str, runs_dir: Optional[str] = None) -> str:
    """Resolve ``target`` to a manifest file path.

    ``target`` may be an explicit manifest file, a directory containing
    ``run_manifest.json``, or a run id in the run store (whose directory
    holds the manifest of a traced run).  This is the single loader
    behind both ``repro trace show`` and ``repro runs show --trace``.
    """
    if os.path.isfile(target):
        return target
    if os.path.isdir(target):
        candidate = os.path.join(target, MANIFEST_NAME)
        if os.path.isfile(candidate):
            return candidate
        raise FileNotFoundError(
            f"no {MANIFEST_NAME} inside directory {target}"
        )
    store = RunStore(runs_dir)
    run_dir = store.path_for(target)
    if os.path.isdir(run_dir):
        candidate = os.path.join(run_dir, MANIFEST_NAME)
        if os.path.isfile(candidate):
            return candidate
        raise FileNotFoundError(
            f"run {target!r} has no manifest (was it run with --trace?)"
        )
    raise FileNotFoundError(
        f"{target!r} is neither a manifest file, a run directory, "
        f"nor a run id under {store.root}"
    )


def load_manifest(target: str, runs_dir: Optional[str] = None) -> RunManifest:
    """Load the manifest named by ``target`` (see :func:`resolve_manifest_path`)."""
    return read_manifest(resolve_manifest_path(target, runs_dir))
