"""Text rendering for the ``repro runs`` CLI (list / show / diff).

Pure formatting over the typed objects from :mod:`repro.runs.store` and
:mod:`repro.runs.diffs` — no I/O, no wall clock, so every renderer is
trivially testable and the CLI layer stays a thin shell.
"""

from __future__ import annotations

from typing import List

from .diffs import ExperimentDiff, RunDiff
from .store import RunRecord

__all__ = ["render_runs_table", "render_run", "render_run_diff"]

_STATUS_GLYPH = {"complete": "ok", "failed": "FAILED", "running": "…"}


def render_runs_table(records: List[RunRecord]) -> List[str]:
    """One line per run: id, status, command, seed/scale, progress."""
    if not records:
        return ["(no runs)"]
    lines = [
        f"{'RUN':<44} {'STATUS':<8} {'CMD':<7} {'SEED':>9} "
        f"{'SCALE':>7} {'DONE':>7} {'SECONDS':>8}  CONFIG"
    ]
    for rec in records:
        done = f"{rec.n_recorded}/{len(rec.planned)}"
        lines.append(
            f"{rec.run_id:<44} {_STATUS_GLYPH.get(rec.status, rec.status):<8} "
            f"{rec.context.command:<7} {rec.context.seed:>9} "
            f"{rec.context.scale:>7g} {done:>7} {rec.total_seconds:>8.2f}  "
            f"{rec.context.config_sha256[:12]}"
        )
    return lines


def render_run(record: RunRecord) -> List[str]:
    """The ``runs show`` body: provenance header + per-experiment table."""
    ctx = record.context
    lines = [
        f"run       : {record.run_id}",
        f"status    : {record.status}",
        f"path      : {record.path}",
        f"command   : {ctx.command}",
        f"config    : sha256:{ctx.config_sha256}",
        f"seed/scale: {ctx.seed} @ {ctx.scale:g}",
        f"engine    : {ctx.engine} (store={ctx.store})",
        f"policy    : retries={ctx.max_retries} backoff={ctx.retry_backoff:g}s"
        + (
            f" timeout={ctx.timeout_seconds:g}s"
            if ctx.timeout_seconds else ""
        ),
    ]
    if ctx.git_rev:
        lines.append(f"git       : {ctx.git_rev}")
    if ctx.package_version or ctx.python_version:
        lines.append(
            f"versions  : repro {ctx.package_version or '?'} / "
            f"python {ctx.python_version or '?'}"
        )
    params = dict(ctx.params)
    if params:
        rendered = " ".join(f"{k}={params[k]}" for k in sorted(params))
        lines.append(f"params    : {rendered}")
    lines.append(f"total     : {record.total_seconds:.2f}s")
    lines.append("")
    lines.append(
        f"{'EXPERIMENT':<16} {'STATUS':<8} {'SECONDS':>8} {'TRIES':>5} "
        f"{'METRICS':>7}  ARTIFACT"
    )
    for eid in record.planned:
        result = record.results.get(eid)
        if result is None:
            lines.append(f"{eid:<16} {'missing':<8} {'-':>8} {'-':>5} {'-':>7}")
            continue
        artifact = result.artifacts[0] if result.artifacts else ""
        lines.append(
            f"{eid:<16} {result.status:<8} {result.seconds:>8.2f} "
            f"{result.attempts:>5} {len(result.metrics):>7}  {artifact}"
        )
        if result.error is not None:
            lines.append(
                f"  error: {result.error.get('type', '?')}: "
                f"{result.error.get('message', '')}"
            )
    return lines


def _render_experiment_diff(diff: ExperimentDiff, limit: int) -> List[str]:
    head = f"{diff.experiment_id:<16} {diff.status}"
    if diff.status in ("identical", "equal"):
        suffix = f" ({diff.n_compared} metrics"
        suffix += ", byte-identical)" if diff.status == "identical" else ")"
        return [head + suffix]
    if diff.status in ("missing-in-a", "missing-in-b", "failed"):
        return [head]
    lines = [
        head
        + f" ({len(diff.deltas)}/{diff.n_compared} metrics differ, "
        + f"max |Δ| = {diff.max_delta:g})"
    ]
    shown = sorted(diff.deltas, key=lambda d: -d.delta)[:limit]
    for delta in shown:
        lines.append(
            f"    {delta.key}: {delta.a:g} -> {delta.b:g} "
            f"(|Δ| = {delta.delta:g})"
        )
    hidden = len(diff.deltas) - len(shown)
    if hidden > 0:
        lines.append(f"    … and {hidden} more")
    if diff.only_in_a:
        lines.append(f"    keys only in a: {len(diff.only_in_a)}")
    if diff.only_in_b:
        lines.append(f"    keys only in b: {len(diff.only_in_b)}")
    return lines


def render_run_diff(diff: RunDiff, limit: int = 5) -> List[str]:
    """The ``runs diff`` body: per-experiment verdicts, largest deltas first."""
    lines = [
        f"diff {diff.a_id}",
        f"  vs {diff.b_id}",
        f"tolerance |Δ| <= {diff.tolerance:g}",
        "",
    ]
    for exp in diff.experiments:
        lines.extend(_render_experiment_diff(exp, limit))
    lines.append("")
    if diff.identical:
        lines.append(
            f"runs match: 0 metric deltas across "
            f"{len(diff.experiments)} experiments"
        )
    else:
        differing = diff.differing
        lines.append(
            f"runs differ: {len(differing)}/{len(diff.experiments)} "
            f"experiments, {diff.n_deltas} metric deltas"
        )
    return lines
