"""The experiment run-contract: :class:`RunContext` in, :class:`ExperimentResult` out.

Every registered experiment — classic registry
(:mod:`repro.report.experiments`) and streaming registry
(:mod:`repro.report.stream_experiments`) alike — executes under one
typed contract:

* a frozen :class:`RunContext` flows *in*: the config fingerprint, seed,
  scale, resolved engine, store kind, git revision and the fault/retry
  policy of the invocation.  Its identity fields derive a deterministic
  :meth:`~RunContext.run_key`, so the same invocation always maps to the
  same run-store slot — run ids are a function of the context, never of
  timestamps (reprolint R002 keeps wall-clock reads out of this layer);
* a typed :class:`ExperimentResult` flows *out* of each experiment: the
  status, rendered lines, a numeric metrics dict extracted from them, the
  artifact paths the store persisted, timings, retry counts and — for a
  degraded experiment — the structured failure payload.

The contract is what makes runs *queryable*: ``repro runs diff``
compares two runs metric-by-metric because every result carries the same
deterministic metric extraction (:func:`extract_metrics`), and ``repro
runs resume`` can re-execute exactly the missing experiments because the
context records enough to rebuild the dataset.  See
``docs/run-contract.md`` for the on-disk schema.

This module never reads the wall clock; ``created_unix`` stamps are
passed in by the CLI layer (see :mod:`repro.runs.store`).
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..robust.retry import RetryOutcome, RetryPolicy

__all__ = [
    "RUN_SCHEMA_VERSION",
    "RunContext",
    "ExperimentResult",
    "extract_metrics",
    "result_from_outcome",
    "text_sha256",
]

#: Bump when the run.json / result.json schema changes incompatibly.
RUN_SCHEMA_VERSION = 1

#: Numeric token inside a rendered report line.  Lookarounds keep the
#: match off identifier tails (hex digests, ids) so metric extraction is
#: stable: a token must stand on its own, optionally comma-grouped.
_NUMBER_RE = re.compile(
    r"(?<![A-Za-z0-9_.])-?(?:\d{1,3}(?:,\d{3})+|\d+)(?:\.\d+)?"
    r"(?:[eE][-+]?\d+)?(?![A-Za-z0-9_])"
)


def extract_metrics(lines: List[str]) -> Dict[str, float]:
    """Deterministic numeric metrics of a rendered report.

    Every free-standing numeric token in ``lines`` becomes one metric,
    keyed positionally as ``l<line>.<n>`` (0-based line, n-th number on
    that line).  Two byte-identical reports therefore produce *equal*
    metric dicts — the exactness property ``runs diff`` relies on — and
    two runs of the same experiment on different seeds produce
    *aligned* keys wherever their tables share shape, giving meaningful
    per-cell deltas.
    """
    metrics: Dict[str, float] = {}
    for i, line in enumerate(lines):
        for k, match in enumerate(_NUMBER_RE.finditer(line)):
            metrics[f"l{i:04d}.{k:02d}"] = float(match.group().replace(",", ""))
    return metrics


def text_sha256(title: str, lines: List[str]) -> str:
    """Hex digest of a result's rendered text (title + lines)."""
    payload = "\n".join([title] + list(lines))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunContext:
    """Everything that defines one experiment-suite invocation.

    Identity fields (:data:`RunContext.IDENTITY_FIELDS`) derive
    :meth:`run_key`: the config fingerprint already covers every
    structural generation knob (seed and scale included), and the
    command/store/experiment selection distinguishes invocations over
    the same dataset.  Runtime knobs — parallelism, the retry policy,
    git revision, package versions — are *recorded* but excluded from
    the key: they never change what a deterministic run produces.

    ``config`` holds the reconstructable :class:`~repro.synth.config.
    SimulationConfig` overrides (scale, seed, engine, posts, cohorts) so
    ``runs resume`` can rebuild the dataset; a context built from a
    programmatic config with custom curves records the fingerprint but
    cannot be resumed (the store refuses rather than guessing).
    """

    command: str
    config_sha256: str
    seed: int
    scale: float
    engine: str
    store: str
    experiments: Tuple[str, ...]
    latent_k: int = 12
    package_version: str = ""
    python_version: str = ""
    git_rev: str = ""
    parallel: int = 1
    max_retries: int = 1
    retry_backoff: float = 0.0
    timeout_seconds: Optional[float] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    config: Mapping[str, Any] = field(default_factory=dict)

    #: Fields participating in :meth:`run_key`; everything else is
    #: runtime provenance.
    IDENTITY_FIELDS = (
        "command", "config_sha256", "seed", "scale", "engine", "store",
        "experiments", "latent_k", "params",
    )

    def run_key(self) -> str:
        """SHA-256 over the canonical JSON of the identity fields."""
        payload = {name: getattr(self, name) for name in self.IDENTITY_FIELDS}
        payload["experiments"] = list(self.experiments)
        payload["params"] = dict(self.params)
        canonical = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def run_name(self) -> str:
        """Deterministic base directory name for this context's runs.

        Derived entirely from the identity fields — never from
        timestamps — so re-invoking the same context always lands next
        to its previous runs (the store disambiguates repeats with an
        ordinal suffix, see :meth:`repro.runs.store.RunStore.begin`).
        """
        return (
            f"{self.command}-s{self.seed}-x{self.scale:g}-"
            f"{self.run_key()[:10]}"
        )

    def retry_policy(self) -> RetryPolicy:
        """The :class:`~repro.robust.RetryPolicy` this context ran under."""
        return RetryPolicy(
            max_retries=max(0, self.max_retries),
            backoff_seconds=max(0.0, self.retry_backoff),
            timeout_seconds=self.timeout_seconds,
        )

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready plain dict (tuples become lists)."""
        payload = asdict(self)
        payload["experiments"] = list(self.experiments)
        payload["params"] = dict(self.params)
        payload["config"] = dict(self.config)
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RunContext":
        """Rebuild a context from parsed ``run.json`` content."""
        known = {
            name: payload[name]
            for name in cls.__dataclass_fields__  # noqa: SLF001 - public API
            if name in payload
        }
        for required in ("command", "config_sha256", "seed", "scale",
                         "engine", "store", "experiments"):
            if required not in known:
                raise ValueError(f"run context missing field {required!r}")
        known["experiments"] = tuple(known["experiments"])
        return cls(**known)


@dataclass
class ExperimentResult:
    """One experiment's typed outcome: what ran, what it produced, at what cost.

    ``error`` is ``None`` for a successful run.  A failed experiment
    does **not** abort the batch: it comes back with ``error`` holding a
    picklable payload (``type``/``message``/``traceback``/``attempts``/
    ``failures``) and placeholder ``lines``; the run store records the
    same payload so ``runs resume`` knows to re-execute it.

    ``metrics`` is the deterministic numeric extraction of ``lines``
    (:func:`extract_metrics`) — the substrate ``runs diff`` compares.
    ``artifacts`` holds store-relative paths written for this result
    (filled in by :meth:`repro.runs.store.RunHandle.record`).  ``trace``
    carries the child tracer snapshot for parallel traced runs and is
    never persisted (the run manifest holds the merged span tree).
    ``attempts`` counts executions including retries (1 = succeeded
    first try).
    """

    experiment_id: str
    title: str
    lines: List[str]
    seconds: float
    trace: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    attempts: int = 1
    metrics: Dict[str, float] = field(default_factory=dict)
    artifacts: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def status(self) -> str:
        return "ok" if self.ok else "failed"

    def text(self) -> str:
        """The rendered artefact text (title, blank line, lines).

        Byte-identical to the historical
        :meth:`~repro.report.experiments.ExperimentReport.text` format,
        so artifacts written by the run store match the files ``report
        --out`` always produced.
        """
        return "\n".join([self.title, ""] + list(self.lines))

    def text_digest(self) -> str:
        """Hex sha256 of :meth:`text` — the byte-exactness witness."""
        return text_sha256(self.title, self.lines)

    @property
    def report(self):
        """The legacy :class:`~repro.report.experiments.ExperimentReport` view."""
        from ..report.experiments import ExperimentReport

        return ExperimentReport(self.experiment_id, self.title, self.lines)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready plain dict; the tracer snapshot is not persisted."""
        return {
            "schema": RUN_SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "status": self.status,
            "lines": list(self.lines),
            "seconds": self.seconds,
            "attempts": self.attempts,
            "metrics": dict(self.metrics),
            "artifacts": list(self.artifacts),
            "error": self.error,
            "text_sha256": self.text_digest(),
        }

    @classmethod
    def from_outcome(
        cls, experiment_id: str, outcome: RetryOutcome, seconds: float
    ) -> "ExperimentResult":
        """See :func:`result_from_outcome`."""
        return result_from_outcome(experiment_id, outcome, seconds)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from a ``results/<id>.json`` payload."""
        schema = payload.get("schema")
        if not isinstance(schema, int) or schema > RUN_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported result schema {schema!r} "
                f"(this build reads <= {RUN_SCHEMA_VERSION})"
            )
        for required in ("experiment_id", "title", "lines", "seconds"):
            if required not in payload:
                raise ValueError(f"result missing field {required!r}")
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            lines=list(payload["lines"]),
            seconds=float(payload["seconds"]),
            error=payload.get("error"),
            attempts=int(payload.get("attempts", 1)),
            metrics={k: float(v) for k, v in payload.get("metrics", {}).items()},
            artifacts=list(payload.get("artifacts", [])),
        )


def result_from_outcome(
    experiment_id: str, outcome: RetryOutcome, seconds: float
) -> ExperimentResult:
    """Fold a :class:`~repro.robust.RetryOutcome` into the typed result.

    The single degradation path both registries share: a successful
    outcome yields an ``ok`` result with its metrics extracted; an
    exhausted retry budget yields a ``failed`` result carrying the
    structured error payload and ``FAILED`` placeholder lines — never an
    exception, so one broken experiment cannot sink a batch.
    """
    if outcome.ok:
        report = outcome.value
        return ExperimentResult(
            experiment_id, report.title, report.lines, seconds,
            attempts=outcome.attempts,
            metrics=extract_metrics(report.lines),
        )
    error = {
        "type": type(outcome.error).__name__,
        "message": str(outcome.error),
        "traceback": outcome.traceback_text,
        "attempts": outcome.attempts,
        "failures": outcome.failures,
    }
    lines = [
        f"FAILED after {outcome.attempts} attempt(s): "
        f"{error['type']}: {error['message']}"
    ]
    return ExperimentResult(
        experiment_id, f"{experiment_id}: FAILED", lines, seconds,
        error=error, attempts=outcome.attempts,
    )
