"""repro.runs — the experiment run-contract and persistent run store.

The lifecycle layer behind ``repro runs``: every ``repro report`` /
``repro stream`` invocation flows a frozen
:class:`~repro.runs.contract.RunContext` in and typed
:class:`~repro.runs.contract.ExperimentResult` objects out, persisted
into an atomically-published, checksummed run directory
(:class:`~repro.runs.store.RunStore`) that can later be listed,
inspected, compared metric-by-metric
(:func:`~repro.runs.diffs.diff_runs`) and — for interrupted or degraded
sweeps — resumed (:func:`~repro.runs.runner.resume_run`) with only the
missing experiments re-executed.

* :mod:`repro.runs.contract` — the typed contract and the deterministic
  metric extraction both registries share;
* :mod:`repro.runs.store` — the on-disk store: run directories,
  atomic result recording, corrupt-run quarantine, the shared manifest
  resolver used by ``trace show`` and ``runs show``;
* :mod:`repro.runs.runner` — execute/resume orchestration over the
  classic and streaming registries;
* :mod:`repro.runs.diffs` — per-experiment metric deltas with
  tolerance;
* :mod:`repro.runs.render` — text rendering for the CLI.

Run identity is a pure function of the context (config hash, seed,
scale, engine, store kind, experiment selection) — never a timestamp —
so reruns of the same invocation land in sibling slots and
``runs diff`` on two identical-(seed, config) runs reports zero metric
deltas.  See ``docs/run-contract.md`` for the full schema and worked
examples.
"""

from .contract import (
    RUN_SCHEMA_VERSION,
    ExperimentResult,
    RunContext,
    extract_metrics,
    result_from_outcome,
    text_sha256,
)
from .diffs import ExperimentDiff, MetricDelta, RunDiff, diff_runs
from .render import render_run, render_run_diff, render_runs_table
from .runner import detect_git_rev, execute_run, execute_stream_run, resume_run
from .store import (
    RUN_FILE,
    CorruptRunError,
    RunHandle,
    RunRecord,
    RunsError,
    RunStore,
    UnknownRunError,
    default_runs_dir,
    load_manifest,
    resolve_manifest_path,
)

__all__ = [
    "RUN_SCHEMA_VERSION",
    "RUN_FILE",
    "RunContext",
    "ExperimentResult",
    "extract_metrics",
    "result_from_outcome",
    "text_sha256",
    "RunsError",
    "CorruptRunError",
    "UnknownRunError",
    "RunStore",
    "RunHandle",
    "RunRecord",
    "default_runs_dir",
    "resolve_manifest_path",
    "load_manifest",
    "MetricDelta",
    "ExperimentDiff",
    "RunDiff",
    "diff_runs",
    "render_runs_table",
    "render_run",
    "render_run_diff",
    "detect_git_rev",
    "execute_run",
    "execute_stream_run",
    "resume_run",
]
