"""Run orchestration: execute a context against the store, resume later.

:func:`execute_run` and :func:`execute_stream_run` are the two
entry points the CLI drives: begin a run directory, fan the context's
experiments through the registry runner (recording each typed result as
it lands), seal the run.  :func:`resume_run` is their inverse for an
interrupted or degraded sweep: reload the persisted
:class:`~repro.runs.contract.RunContext`, rebuild the dataset through
the ordinary cache path, and re-execute **only** the experiments
without an ``ok`` result — under the same retry policy the original
invocation recorded.

These functions are registered generation entry points for reprolint
R010 (cache-key completeness): every config field they cause to be read
must be covered by the cache fingerprint, which is what makes a resumed
run land on the same cached dataset as the original.

This module never reads the wall clock (reprolint R002); run identity
comes from the context and ``created_unix`` stamps are passed in by the
CLI.
"""

from __future__ import annotations

import subprocess
from typing import Any, List, Optional, Tuple

from ..robust.retry import RetryPolicy
from ..synth.config import SimulationConfig
from .contract import ExperimentResult, RunContext
from .store import RunHandle, RunRecord, RunsError, RunStore

__all__ = [
    "detect_git_rev",
    "execute_run",
    "execute_stream_run",
    "resume_run",
]


def detect_git_rev(cwd: Optional[str] = None) -> str:
    """The short git revision of ``cwd``'s checkout, or ``""``.

    Best-effort provenance: a missing ``git`` binary, a non-repo
    directory, or any other failure degrades to the empty string —
    provenance must never break a run.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except Exception:  # robust: provenance is best-effort, never fatal
        return ""
    if proc.returncode != 0:
        return ""
    return proc.stdout.strip()


def execute_run(
    store: Optional[RunStore],
    context: RunContext,
    ctx: Any,
    policy: Optional[RetryPolicy] = None,
    created_unix: Optional[float] = None,
) -> Tuple[Optional[RunRecord], List[ExperimentResult]]:
    """Run the classic experiment suite under ``context``, persisted.

    ``ctx`` is the :class:`~repro.report.experiments.ExperimentContext`
    the caller already built (the dataset comes from the cache layer,
    not from here).  With ``store=None`` the suite runs unpersisted and
    the record comes back ``None`` — the ``--no-run-store`` escape
    hatch.  Serial sweeps persist each result the moment it finishes,
    so a mid-sweep kill is resumable (see :func:`resume_run`).
    """
    from ..report.experiments import run_all_experiments

    handle: Optional[RunHandle] = None
    if store is not None:
        handle = store.begin(context, created_unix=created_unix)
    results = run_all_experiments(
        ctx,
        list(context.experiments),
        parallel=max(1, context.parallel),
        policy=policy if policy is not None else context.retry_policy(),
        on_result=handle.record if handle is not None else None,
    )
    record = handle.finish() if handle is not None else None
    return record, results


def execute_stream_run(
    store: Optional[RunStore],
    context: RunContext,
    partition_store: Any,
    policy: Optional[RetryPolicy] = None,
    created_unix: Optional[float] = None,
) -> Tuple[Optional[RunRecord], List[ExperimentResult]]:
    """Run streaming experiments under ``context``, persisted.

    ``context.experiments`` holds the persisted ``stream-<id>`` result
    ids; the window/era selection comes from ``context.params``
    (``start`` / ``end`` / ``era``).  Streaming runs are serial — each
    result is recorded as it lands, so interrupted stream sweeps resume
    exactly like classic ones.
    """
    handle: Optional[RunHandle] = None
    if store is not None:
        handle = store.begin(context, created_unix=created_unix)
    results = _run_stream_batch(
        handle, context, partition_store, list(context.experiments), policy
    )
    record = handle.finish() if handle is not None else None
    return record, results


def _run_stream_batch(
    handle: Optional[RunHandle],
    context: RunContext,
    partition_store: Any,
    result_ids: List[str],
    policy: Optional[RetryPolicy],
) -> List[ExperimentResult]:
    from ..report.stream_experiments import run_stream_result

    params = dict(context.params)
    results: List[ExperimentResult] = []
    for result_id in result_ids:
        raw = result_id[len("stream-"):] if result_id.startswith(
            "stream-"
        ) else result_id
        result = run_stream_result(
            raw,
            partition_store,
            start=params.get("start"),
            end=params.get("end"),
            era=params.get("era"),
            policy=policy if policy is not None else context.retry_policy(),
        )
        if handle is not None:
            handle.record(result)
        results.append(result)
    return results


def _rebuild_config(context: RunContext) -> SimulationConfig:
    """Reconstruct the original config, or refuse with a clear error."""
    payload = dict(context.config)
    if not payload:
        raise RunsError(
            "this run records no reconstructable config (it was created "
            "programmatically, e.g. with custom curves); cannot resume"
        )
    try:
        config = SimulationConfig(**payload)
    except TypeError as exc:
        raise RunsError(f"recorded config is not reconstructable: {exc}") from exc
    from ..synth.cache import config_fingerprint

    fingerprint = config_fingerprint(config)
    if fingerprint != context.config_sha256:
        raise RunsError(
            "recorded config overrides reproduce fingerprint "
            f"{fingerprint[:12]}… but the run was created from "
            f"{context.config_sha256[:12]}…; refusing to resume against "
            "a different dataset"
        )
    return config


def resume_run(
    store: RunStore,
    run_id: str,
    cache_dir: Optional[str] = None,
    parallel: Optional[int] = None,
) -> Tuple[RunRecord, List[str]]:
    """Complete an interrupted or degraded run in place.

    Loads the run, determines the planned experiments without an ``ok``
    result (missing after a mid-sweep kill, or recorded failures),
    rebuilds the dataset through the normal cache path from the
    persisted context, and re-executes only those — under the retry
    policy the context recorded.  Returns the sealed record and the ids
    that were re-executed (empty when the run was already complete; the
    run is then just re-sealed, refreshing status and index).

    Raises :class:`~repro.runs.store.RunsError` when the recorded
    config cannot be rebuilt or no longer matches the run's fingerprint.
    """
    record = store.load(run_id)
    pending = record.pending
    handle = store.reopen(run_id)
    if not pending:
        return handle.finish(), []
    context = record.context
    config = _rebuild_config(context)
    overrides = {
        k: v for k, v in dict(context.config).items()
        if k not in ("scale", "seed")
    }
    policy = context.retry_policy()
    if context.command == "stream":
        from ..synth.cache import cached_partitioned_store

        partition_store, _hit = cached_partitioned_store(
            scale=context.scale,
            seed=context.seed,
            cache_dir=cache_dir,
            **overrides,
        )
        _run_stream_batch(handle, context, partition_store, pending, policy)
        return handle.finish(), pending

    from ..report.experiments import ExperimentContext, run_all_experiments

    if context.store == "partitioned":
        from ..synth.cache import (
            cached_partitioned_store,
            result_from_partitioned_store,
        )

        partition_store, _hit = cached_partitioned_store(
            scale=context.scale,
            seed=context.seed,
            cache_dir=cache_dir,
            **overrides,
        )
        result = result_from_partitioned_store(partition_store, config)
    else:
        from ..synth.cache import cached_generate

        result, _hit = cached_generate(
            scale=context.scale,
            seed=context.seed,
            cache_dir=cache_dir,
            **overrides,
        )
    ctx = ExperimentContext(result, latent_k=context.latent_k)
    run_all_experiments(
        ctx,
        pending,
        parallel=max(1, parallel if parallel is not None else context.parallel),
        policy=policy,
        on_result=handle.record,
    )
    return handle.finish(), pending
