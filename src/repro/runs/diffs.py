"""Metric-level comparison of two persisted runs (``repro runs diff``).

Both runs carry the deterministic per-line metric extraction of
:func:`repro.runs.contract.extract_metrics`, so a diff is a key-aligned
comparison: for every experiment present in either run, every metric key
present in both sides yields an absolute delta, keys present on one side
only are reported as shape drift, and the ``text_sha256`` digests give a
byte-exactness verdict independent of float formatting.  Two runs of the
same (seed, config) must diff to zero — that is the store's
reproducibility contract, exercised in ``tests/test_runs.py`` and the CI
runs smoke job.

Deltas at or below the caller's ``tolerance`` are treated as equal;
``tolerance=0.0`` (the default) demands exact equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .contract import ExperimentResult
from .store import RunRecord

__all__ = ["MetricDelta", "ExperimentDiff", "RunDiff", "diff_runs"]


@dataclass
class MetricDelta:
    """One metric key whose values differ beyond the tolerance."""

    key: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return abs(self.a - self.b)


@dataclass
class ExperimentDiff:
    """Comparison verdict for one experiment id across two runs.

    ``status`` is one of ``identical`` (same rendered bytes),
    ``equal`` (all shared metrics within tolerance, text differs only in
    formatting), ``differs``, ``shape-drift`` (metric keys exist on one
    side only), ``missing-in-a`` / ``missing-in-b`` (no ok result on
    that side), or ``failed`` (a side recorded a failure payload).
    """

    experiment_id: str
    status: str
    n_compared: int = 0
    deltas: List[MetricDelta] = field(default_factory=list)
    only_in_a: List[str] = field(default_factory=list)
    only_in_b: List[str] = field(default_factory=list)

    @property
    def max_delta(self) -> float:
        return max((d.delta for d in self.deltas), default=0.0)

    @property
    def clean(self) -> bool:
        return self.status in ("identical", "equal")


@dataclass
class RunDiff:
    """The full diff between two runs."""

    a_id: str
    b_id: str
    tolerance: float
    experiments: List[ExperimentDiff] = field(default_factory=list)

    @property
    def differing(self) -> List[ExperimentDiff]:
        return [e for e in self.experiments if not e.clean]

    @property
    def identical(self) -> bool:
        return not self.differing

    @property
    def n_deltas(self) -> int:
        return sum(len(e.deltas) for e in self.experiments)


def _diff_one(
    experiment_id: str,
    a: Optional[ExperimentResult],
    b: Optional[ExperimentResult],
    tolerance: float,
) -> ExperimentDiff:
    if a is None or not a.ok:
        status = "failed" if a is not None else "missing-in-a"
        return ExperimentDiff(experiment_id, status)
    if b is None or not b.ok:
        status = "failed" if b is not None else "missing-in-b"
        return ExperimentDiff(experiment_id, status)
    diff = ExperimentDiff(experiment_id, "equal")
    shared = sorted(set(a.metrics) & set(b.metrics))
    diff.n_compared = len(shared)
    diff.only_in_a = sorted(set(a.metrics) - set(b.metrics))
    diff.only_in_b = sorted(set(b.metrics) - set(a.metrics))
    for key in shared:
        va, vb = a.metrics[key], b.metrics[key]
        if abs(va - vb) > tolerance:
            diff.deltas.append(MetricDelta(key, va, vb))
    if a.text_digest() == b.text_digest():
        diff.status = "identical"
    elif diff.deltas:
        diff.status = "differs"
    elif diff.only_in_a or diff.only_in_b:
        diff.status = "shape-drift"
    return diff


def diff_runs(
    a: RunRecord,
    b: RunRecord,
    tolerance: float = 0.0,
    experiments: Optional[Sequence[str]] = None,
) -> RunDiff:
    """Compare two loaded runs experiment-by-experiment, metric-by-metric.

    ``experiments`` restricts the comparison to the given ids; by
    default every id planned in either run is compared, in run-a order
    first.
    """
    if experiments is not None:
        wanted = list(experiments)
    else:
        wanted = list(a.planned) + [
            eid for eid in b.planned if eid not in a.planned
        ]
    out = RunDiff(a.run_id, b.run_id, tolerance)
    for eid in wanted:
        out.experiments.append(
            _diff_one(eid, a.results.get(eid), b.results.get(eid), tolerance)
        )
    return out
