"""Trust-signal intervention experiments (the paper's §7 suggestion)."""

from .sybil import (
    SybilAttack,
    TrustImpact,
    apply_sybil_attack,
    era_vulnerability,
    measure_trust_distortion,
)

__all__ = [
    "SybilAttack",
    "TrustImpact",
    "apply_sybil_attack",
    "era_vulnerability",
    "measure_trust_distortion",
]
