"""Trust-signal interventions: Sybil attacks on the reputation record.

The paper's first 'broader relevance' point (§7): the public transaction
record is a trust infrastructure that progressively concentrates the
market around power-users, so "spurious negative reviews and other forms
of Sybil attack are best targeted in the early days of market formation,
before this concentration effect takes root".

This module turns that claim into an experiment (the intervention is
modelled for *defensive* analysis of criminal marketplaces, following the
paper).  An attack injects fake negative reputation votes from throwaway
accounts at a chosen date; the *trust distortion* it causes is measured
on the reputation record itself:

* rank correlation (Spearman) between pre- and post-attack reputation
  rankings — how scrambled the trust signal is;
* displacement of the top-k trusted users — how many established traders
  lose their standing;
* the median reputation drop of the targeted users.

Running the same attack budget at each era's start reproduces the
paper's claim: the earlier the attack, the larger the distortion.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.stats import spearmanr

from ..core.dataset import MarketDataset
from ..core.entities import Rating
from ..core.eras import ERAS, Era

__all__ = [
    "SybilAttack",
    "TrustImpact",
    "apply_sybil_attack",
    "measure_trust_distortion",
    "era_vulnerability",
]

#: Fake rater ids start here so they never collide with organic users.
_SYBIL_ID_BASE = 10_000_000


@dataclass(frozen=True)
class SybilAttack:
    """One attack configuration.

    ``budget`` fake negative votes are spread over ``targets`` users,
    chosen by ``strategy``:

    * ``"top_users"`` — the most-reputed users at attack time (the
      power-users whose standing anchors the market);
    * ``"random"`` — uniformly among users with any reputation.
    """

    when: _dt.datetime
    budget: int = 200
    targets: int = 20
    strategy: str = "top_users"

    def __post_init__(self) -> None:
        if self.budget <= 0 or self.targets <= 0:
            raise ValueError("budget and targets must be positive")
        if self.strategy not in ("top_users", "random"):
            raise ValueError("strategy must be 'top_users' or 'random'")


def _reputation_at(dataset: MarketDataset, when: _dt.datetime) -> Dict[int, int]:
    """Net reputation (votes only) per user as of ``when``."""
    scores: Dict[int, int] = {}
    for rating in dataset.ratings:
        if rating.created_at <= when:
            scores[rating.ratee_id] = scores.get(rating.ratee_id, 0) + rating.score
    return scores


def apply_sybil_attack(
    dataset: MarketDataset, attack: SybilAttack, seed: int = 0
) -> Tuple[MarketDataset, List[int]]:
    """Inject the attack's fake negative votes; return (dataset, targets).

    The original dataset is not modified; the returned dataset shares the
    entity lists except for an extended ratings table.
    """
    rng = np.random.default_rng(seed)
    standing = _reputation_at(dataset, attack.when)
    candidates = [u for u, score in standing.items() if score > 0]
    if not candidates:
        raise ValueError("no reputed users exist at the attack date")

    if attack.strategy == "top_users":
        candidates.sort(key=lambda u: -standing[u])
        targets = candidates[: attack.targets]
    else:
        size = min(attack.targets, len(candidates))
        targets = [int(u) for u in rng.choice(candidates, size=size, replace=False)]

    per_target = np.full(len(targets), attack.budget // len(targets))
    per_target[: attack.budget % len(targets)] += 1

    fake_ratings: List[Rating] = []
    sybil_id = _SYBIL_ID_BASE
    for target, count in zip(targets, per_target):
        for _ in range(int(count)):
            offset = float(rng.uniform(0, 14 * 86400))  # two-week campaign
            fake_ratings.append(
                Rating(
                    contract_id=0,
                    rater_id=sybil_id,
                    ratee_id=int(target),
                    score=-1,
                    created_at=attack.when + _dt.timedelta(seconds=offset),
                )
            )
            sybil_id += 1

    attacked = MarketDataset(
        users=dataset.users,
        contracts=dataset.contracts,
        threads=dataset.threads,
        posts=dataset.posts,
        ratings=list(dataset.ratings) + fake_ratings,
    )
    return attacked, targets


@dataclass
class TrustImpact:
    """Distortion of the reputation record caused by one attack."""

    rank_correlation: float        # Spearman rho pre vs post (1 = unharmed)
    top_k_displaced: float         # share of top-k users pushed out of top-k
    median_target_drop: float      # median reputation loss of targets
    targets_negative_share: float  # share of targets driven below zero

    @property
    def distortion(self) -> float:
        """A single 0..1 damage score (1 = fully scrambled top ranks)."""
        return max(0.0, 1.0 - max(self.rank_correlation, 0.0)) * 0.5 + (
            self.top_k_displaced * 0.5
        )


def measure_trust_distortion(
    original: MarketDataset,
    attacked: MarketDataset,
    targets: Sequence[int],
    when: _dt.datetime,
    horizon_days: int = 30,
    top_k: int = 50,
) -> TrustImpact:
    """Compare the reputation record with and without the attack.

    Measured ``horizon_days`` after the attack date, over users who had
    any reputation at that point in the clean timeline.
    """
    at = when + _dt.timedelta(days=horizon_days)
    before = _reputation_at(original, at)
    after = _reputation_at(attacked, at)
    users = sorted(before)
    if len(users) < 3:
        raise ValueError("too few reputed users to measure distortion")

    clean = np.asarray([before[u] for u in users], dtype=float)
    dirty = np.asarray([after.get(u, 0) for u in users], dtype=float)
    rho = float(spearmanr(clean, dirty).statistic)

    k = min(top_k, len(users))
    top_before = set(sorted(users, key=lambda u: -before[u])[:k])
    top_after = set(sorted(users, key=lambda u: -after.get(u, 0))[:k])
    displaced = len(top_before - top_after) / k

    drops = [before.get(t, 0) - after.get(t, 0) for t in targets]
    negative = sum(1 for t in targets if after.get(t, 0) < 0)

    return TrustImpact(
        rank_correlation=rho,
        top_k_displaced=displaced,
        median_target_drop=float(np.median(drops)) if drops else 0.0,
        targets_negative_share=negative / len(targets) if targets else 0.0,
    )


def era_vulnerability(
    dataset: MarketDataset,
    budget: int = 200,
    targets: int = 20,
    strategy: str = "top_users",
    seed: int = 0,
    offset_days: int = 45,
) -> Dict[str, TrustImpact]:
    """Run the same attack budget early in each era and compare damage.

    The attack lands ``offset_days`` into each era (so every era has some
    reputation record to distort).  Per the paper's argument, the SET-UP
    attack should scramble the trust signal the most.
    """
    impacts: Dict[str, TrustImpact] = {}
    for era in ERAS:
        when = _dt.datetime.combine(era.start, _dt.time(12)) + _dt.timedelta(
            days=offset_days
        )
        attack = SybilAttack(when=when, budget=budget, targets=targets,
                             strategy=strategy)
        try:
            attacked, hit = apply_sybil_attack(dataset, attack, seed=seed)
            impacts[era.name] = measure_trust_distortion(
                dataset, attacked, hit, when
            )
        except ValueError:
            continue
    return impacts
